#include "sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/chain_search.hpp"
#include "core/cost_model.hpp"
#include "core/placement_dp.hpp"
#include "fault/degraded.hpp"
#include "fault/fault.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "sim/audit.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "util/checksum.hpp"
#include "util/ids.hpp"
#include "util/require.hpp"
#include "workload/diurnal.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

namespace {

/// Persistent per-shard runtime state across epochs.
struct ShardRun {
  Placement placement;
  std::unique_ptr<MigrationPolicy> policy;
  std::unique_ptr<CostModel> degraded_model;
  double last_comm = 0.0;     ///< stale estimate charged at kFrozen
  int staleness = 0;          ///< consecutive held epochs
  int churned = 0;            ///< churned flows since the last re-solve
  bool resync_pending = false;  ///< primary bases stale after faults

  // Private degradation ladder + failure containment (DESIGN.md §15).
  DegradationRung rung = DegradationRung::kFull;
  int clean_streak = 0;  ///< trip-free epochs at the current rung
  int fail_streak = 0;   ///< consecutive failed policy attempts (quarantine)
};

/// One shard's contribution to one epoch, merged in fixed shard order.
struct ShardEpochResult {
  EpochDecision d;
  int quarantined = 0;
  double unserved = 0.0;
  double served_rate = 0.0;  ///< Σ served rates (quarantine-SLA base)
  int recovery_migrations = 0;
  double recovery_cost = 0.0;
  int recovery_truncations = 0;
  bool resolved = false;
  bool held = false;
  bool frozen = false;   ///< executed at kFrozen (stale charge, audit-exempt)
  bool retried = false;  ///< re-solve attempt of a failure-quarantined shard
};

/// Clean epochs a shard must string together before climbing one rung.
/// First failure (and every non-throw trip) matches the monolithic ladder
/// — `recovery_epochs` — so single-shard non-throwing runs transcribe the
/// monolithic trace exactly. Repeat failures back off exponentially
/// (capped) with a seeded jitter, so repeatedly-failing shards across a
/// pod-sharded run do not retry in lockstep.
int required_clean_epochs(int shard, int fail_streak, int recovery_epochs) {
  if (fail_streak <= 1) return recovery_epochs;
  const int backoff = (1 << std::min(fail_streak - 1, 4)) - 1;
  const int jitter = static_cast<int>(
      Hash64().i64(shard).i64(fail_streak).value() %
      static_cast<std::uint64_t>(fail_streak));
  return recovery_epochs + backoff + jitter;
}

}  // namespace

SimTrace run_sharded_simulation(const AllPairs& apsp, const ShardMap& map,
                                StreamingWorkload& workload, int n,
                                const SimConfig& config,
                                const ShardedStreamingConfig& sharded,
                                const MigrationPolicy& prototype,
                                EpochObserver* observer) {
  PPDC_REQUIRE(!workload.flows().empty(),
               "simulation needs at least one flow");
  PPDC_REQUIRE(config.hours >= 1, "simulation needs at least one hour");
  PPDC_REQUIRE(config.fault.mu >= 0.0,
               "negative recovery migration coefficient");
  PPDC_REQUIRE(config.fault.quarantine_penalty >= 0.0,
               "negative quarantine penalty");
  PPDC_REQUIRE(config.ladder.max_quarantined_fraction >= 0.0 &&
                   config.ladder.max_quarantined_fraction <= 1.0,
               "ladder quarantine trip must be a fraction in [0,1]");
  PPDC_REQUIRE(config.ladder.trip_truncations >= 0,
               "negative ladder truncation trip");
  PPDC_REQUIRE(config.ladder.recovery_epochs >= 1,
               "ladder recovery needs at least one clean epoch");
  PPDC_REQUIRE(config.audit.rel_tol >= 0.0 && config.audit.abs_tol >= 0.0,
               "negative audit tolerance");
  PPDC_REQUIRE(!config.rate_schedule,
               "SimConfig::rate_schedule is not supported by the sharded "
               "engine (it rides the grouped diurnal fast path, which a "
               "per-flow schedule would invalidate every epoch); run custom "
               "schedules on the monolithic run_simulation, or express the "
               "traffic shape through DiurnalModel group scales");
  PPDC_REQUIRE(sharded.resolve_churn_fraction >= 0.0 &&
                   sharded.resolve_churn_fraction <= 1.0,
               "resolve_churn_fraction outside [0,1]");
  PPDC_REQUIRE(sharded.max_staleness >= 1,
               "bounded staleness needs max_staleness >= 1");
  PPDC_REQUIRE(sharded.quarantine_sla >= 0.0,
               "negative shard quarantine SLA penalty");
  PPDC_REQUIRE(sharded.epoch_checkpoint_every >= 1,
               "epoch checkpoint cadence must be >= 1");

  const Graph& graph = apsp.graph();
  std::optional<FaultInjector> injector;
  if (!config.faults.empty()) {
    injector.emplace(graph, config.faults);
    PPDC_REQUIRE(config.faults.front().epoch >= Hour{1},
                 "fault events must start at epoch 1 (the initial placement "
                 "sees the pristine fabric)");
  }

  // Global diurnal group domain: every shard's scale vector has this
  // length. Streaming arrivals draw from the same generator as the
  // initial population and may introduce either coast, so a churning run
  // widens the domain to at least the two-coast model even when the
  // initial draw happened to be single-group.
  const StreamingChurnConfig& churn_cfg = workload.churn_config();
  const bool streaming = churn_cfg.arrivals_per_epoch > 0 ||
                         churn_cfg.departure_prob > 0.0 ||
                         churn_cfg.rerate_prob > 0.0;
  int n_groups = num_groups(groups_of(workload.flows()));
  if (streaming) n_groups = std::max(n_groups, 2);

  ShardedCostModel shards(apsp, map, workload.flows(), n_groups);
  const int num_shards = shards.num_shards();
  auto scales_at = [&](Hour hour) {
    return config.diurnal.group_scales(hour, n_groups);
  };
  std::vector<std::string> shard_names;
  shard_names.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shard_names.push_back(shards.shard(s).name);
  }

  // Epoch journal (DESIGN.md §15): when configured, try to resume from a
  // previous incarnation of this exact run. The fingerprint is computed
  // over the *entry* state — the workload before any epoch ran — plus
  // every result-shaping knob, so a journal from a different trial,
  // policy, or configuration warns and is ignored instead of resuming
  // garbage.
  const bool journaling = !sharded.epoch_journal.empty();
  EpochJournalState journal;
  std::uint64_t run_fp = 0;
  bool resumed = false;
  if (journaling) {
    run_fp = fingerprint_sharded_run(workload.snapshot(), config, sharded, n,
                                     num_shards, prototype.name());
    EpochJournalState loaded;
    bool have = false;
    try {
      have = read_epoch_journal(sharded.epoch_journal, loaded);
    } catch (const PpdcError& e) {
      std::cerr << "warning: " << e.what()
                << " — starting the sharded run fresh\n";
    }
    if (have) {
      if (loaded.fingerprint != run_fp) {
        std::cerr << "warning: epoch journal '" << sharded.epoch_journal
                  << "' was written by a different sharded run — starting "
                     "fresh\n";
      } else if (loaded.shards.size() !=
                     static_cast<std::size_t>(num_shards) ||
                 loaded.hours != static_cast<std::uint32_t>(config.hours)) {
        std::cerr << "warning: epoch journal '" << sharded.epoch_journal
                  << "' dimensions disagree with a matching fingerprint "
                     "(corrupt journal?) — starting fresh\n";
      } else {
        journal = std::move(loaded);
        resumed = true;
      }
    }
  }

  std::vector<ShardRun> runs(static_cast<std::size_t>(num_shards));
  Placement merged_initial;
  int start_epoch = 0;

  if (resumed) {
    // Restore everything mutable from the journal's state frame. The
    // shard cost models are rebuilt over the restored flow vectors and
    // handed their group state verbatim — the base vectors carry exact
    // float patch history, which is what makes the resumed trace
    // bit-identical. Policies are re-cloned from the prototype: the
    // placement-policy contract is stateless across epochs (each
    // on_epoch derives everything from the model and state it is
    // handed), so a fresh clone resumes exactly.
    start_epoch = static_cast<int>(journal.epochs.size());
    workload.restore(journal.workload);
    std::vector<ShardedCostModel::ShardSnapshot> snaps;
    snaps.reserve(journal.shards.size());
    for (const ShardResumeState& st : journal.shards) {
      snaps.push_back(st.shard);
    }
    shards.restore_shards(snaps);
    for (int s = 0; s < num_shards; ++s) {
      const ShardResumeState& st =
          journal.shards[static_cast<std::size_t>(s)];
      ShardRun& run = runs[static_cast<std::size_t>(s)];
      run.placement = st.placement;
      run.last_comm = st.last_comm;
      run.staleness = st.staleness;
      run.churned = st.churned;
      run.resync_pending = st.resync_pending;
      run.rung = static_cast<DegradationRung>(st.rung);
      run.clean_streak = st.clean_streak;
      run.fail_streak = st.fail_streak;
      run.policy = prototype.clone();
      PPDC_REQUIRE(run.policy != nullptr,
                   "policy '" + prototype.name() +
                       "' returned a null clone()");
    }
    merged_initial = journal.merged_initial;
    std::cerr << "note: resuming sharded run from epoch journal '"
              << sharded.epoch_journal << "': " << start_epoch << " of "
              << config.hours << " epochs already journaled\n";
  } else {
    // Hour 0: per-shard initial traffic-optimal placement on the pristine
    // fabric (mirrors the monolithic hour-0 TOP solve per shard).
    const std::vector<double> scales0 = scales_at(Hour{0});
    for (int s = 0; s < num_shards; ++s) {
      ShardedCostModel::Shard& sh = shards.shard(s);
      set_rates(sh.flows, diurnal_rates_grouped(config.diurnal, sh.base_rates,
                                                sh.groups, Hour{0}));
      sh.model->refresh_scaled(scales0);
      ShardRun& run = runs[static_cast<std::size_t>(s)];
      run.placement =
          solve_top_dp(*sh.model, n, config.initial_placement).placement;
      run.policy = prototype.clone();
      PPDC_REQUIRE(run.policy != nullptr,
                   "policy '" + prototype.name() + "' returned a null clone()");
    }
    merged_initial.reserve(static_cast<std::size_t>(num_shards * n));
    for (const ShardRun& run : runs) {
      merged_initial.insert(merged_initial.end(), run.placement.begin(),
                            run.placement.end());
    }
    if (journaling) {
      journal.fingerprint = run_fp;
      journal.hours = static_cast<std::uint32_t>(config.hours);
      journal.merged_initial = merged_initial;
    }
  }

  // Sharded runtime invariant auditing (sim/audit.hpp, DESIGN.md §15):
  // one per-run checker that re-derives every shard's epoch from scratch.
  std::unique_ptr<ShardedInvariantAuditor> auditor;
  if (config.audit.enabled) {
    auditor = std::make_unique<ShardedInvariantAuditor>(
        config.audit, prototype.name(), shard_names);
  }

  TraceRecorder recorder;
  auto emit = [&](auto&& fn) {
    fn(static_cast<EpochObserver&>(recorder));
    if (auditor) fn(static_cast<EpochObserver&>(*auditor));
    if (observer != nullptr) fn(*observer);
  };
  emit([&](EpochObserver& o) {
    o.on_run_begin(Hour{config.hours}, merged_initial);
  });

  std::unique_ptr<DegradedNetwork> degraded;

  if (resumed) {
    // Replay the journaled epoch prefix into the TraceRecorder only —
    // external observers (and the auditor's stream checks) see live
    // epochs exclusively; the auditor is told about the replay instead.
    int replayed_transitions = 0;
    for (std::size_t e = 0; e < journal.epochs.size(); ++e) {
      const EpochRecord& rec = journal.epochs[e];
      recorder.on_epoch_end(Hour{static_cast<std::int32_t>(e)},
                            rec.decision);
      for (std::uint32_t t = 0; t < rec.ladder_steps; ++t) {
        recorder.on_ladder_transition(Hour{static_cast<std::int32_t>(e)},
                                      DegradationRung::kFull,
                                      DegradationRung::kRefreshOnly,
                                      "replayed");
        ++replayed_transitions;
      }
    }
    if (auditor) {
      std::vector<DegradationRung> rungs;
      rungs.reserve(runs.size());
      for (const ShardRun& run : runs) rungs.push_back(run.rung);
      auditor->note_resumed(start_epoch, replayed_transitions, rungs);
    }
    // Fast-forward the fault timeline to the resume point and rebuild the
    // shared degraded view. Per-shard degraded models are reconstructed
    // lazily — ctor and refresh() are both full rescans, so a fresh model
    // bit-equals the evolved one wherever it is observed.
    if (injector && start_epoch >= 2) {
      (void)injector->advance_to(Hour{start_epoch - 1});
    }
    if (injector && injector->any_faults_active()) {
      degraded = std::make_unique<DegradedNetwork>(
          graph, injector->dead_nodes(), injector->dead_edges());
    }
  }

  const int pool_want = resolve_experiment_threads(sharded.threads);

  for (const Hour hour : id_range(Hour{start_epoch}, Hour{config.hours})) {
    if (config.cancel != nullptr &&
        config.cancel->load(std::memory_order_relaxed)) {
      emit([&](EpochObserver& o) { o.on_interrupted(hour); });
      throw SimInterrupted("simulation cancelled before epoch " +
                           std::to_string(hour.value()) + " of " +
                           std::to_string(config.hours));
    }
    emit([&](EpochObserver& o) { o.on_epoch_begin(hour); });

    // 0. Inter-epoch churn: the workload advances once per epoch from
    // hour 1 on, and the shards mirror the churn with O(|V_s|) patches.
    int epoch_churn = 0;
    if (hour >= Hour{1}) {
      const FlowChurn churn = workload.advance();
      epoch_churn = static_cast<int>(churn.total());
      if (epoch_churn > 0) {
        const std::vector<int> touched =
            shards.apply_churn(workload.flows(), churn);
        for (int s = 0; s < num_shards; ++s) {
          runs[static_cast<std::size_t>(s)].churned +=
              touched[static_cast<std::size_t>(s)];
        }
      }
    }

    // 1. Fault events and the shared degraded view (read-only for the
    // parallel shard phase, so it is rebuilt here on the main thread).
    EpochFaults events;
    if (injector && hour >= Hour{1}) events = injector->advance_to(hour);
    if (events.switch_failures + events.link_failures + events.repairs > 0) {
      emit([&](EpochObserver& o) { o.on_faults(hour, events); });
    }
    const bool faults_active = injector && injector->any_faults_active();
    if (events.topology_changed) {
      for (ShardRun& run : runs) run.degraded_model.reset();
      degraded.reset();
      if (faults_active) {
        degraded = std::make_unique<DegradedNetwork>(
            graph, injector->dead_nodes(), injector->dead_edges());
      }
    }
    const bool blackout = faults_active && !degraded->core_can_host(n);

    const std::vector<double> scales = scales_at(hour);

    // 2.-5. Per-shard epoch work — traffic, quarantine, model
    // maintenance, emergency recovery, policy or bounded-staleness hold.
    // Shards are independent; results merge in fixed shard order below.
    // Each shard executes at its *own* ladder rung.
    std::vector<ShardEpochResult> results(
        static_cast<std::size_t>(num_shards));
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(num_shards));

    auto shard_epoch = [&](int s) {
      ShardedCostModel::Shard& sh = shards.shard(s);
      ShardRun& run = runs[static_cast<std::size_t>(s)];
      ShardEpochResult& r = results[static_cast<std::size_t>(s)];
      const bool frozen =
          config.ladder.enabled && run.rung == DegradationRung::kFrozen;
      const bool refresh_only =
          config.ladder.enabled && run.rung == DegradationRung::kRefreshOnly;
      r.frozen = frozen;

      // 2. This epoch's traffic; flows cut off from the core quarantine.
      std::vector<double> rates =
          diurnal_rates_grouped(config.diurnal, sh.base_rates, sh.groups,
                                hour);
      if (faults_active) {
        for (std::size_t i = 0; i < sh.flows.size(); ++i) {
          const VmFlow& f = sh.flows[i];
          if (sh.base_rates[i] == 0.0) continue;  // vacant slot
          const bool served = !blackout && degraded->in_core(f.src_host) &&
                              degraded->in_core(f.dst_host);
          if (!served) {
            ++r.quarantined;
            r.unserved += rates[i];
            rates[i] = 0.0;
          }
        }
      }
      set_rates(sh.flows, rates);
      for (const double rate : rates) r.served_rate += rate;

      if (blackout) {
        // Nothing is served and nothing is charged; the stale estimate a
        // later frozen epoch would charge is this epoch's zero (exactly
        // the monolithic last_comm_cost bookkeeping).
        r.d.service_down = true;
        run.last_comm = 0.0;
        return;
      }

      // 3. Cost-model maintenance (mirrors the monolithic engine: a
      // dedicated full-rescan model over the degraded metric while faults
      // are active; group recombination on the pristine path, with a lazy
      // base resync when the fabric heals).
      CostModel* m = sh.model.get();
      if (faults_active) {
        if (!run.degraded_model) {
          run.degraded_model =
              std::make_unique<CostModel>(degraded->apsp(), sh.flows);
          run.degraded_model->restrict_candidates(degraded->core_switches());
        } else if (!frozen) {
          run.degraded_model->refresh();
        }
        m = run.degraded_model.get();
        run.resync_pending = true;
      } else if (!frozen) {
        if (run.resync_pending) {
          sh.model->refresh();
          run.resync_pending = false;
        }
        sh.model->refresh_scaled(scales);
      }

      // 4. Emergency re-placement of VNFs stranded outside the core.
      bool stranded = false;
      if (faults_active) {
        for (const NodeId sw : run.placement) {
          if (!degraded->in_core(sw)) {
            stranded = true;
            break;
          }
        }
      }
      if (stranded) {
        const PlacementResult rec =
            solve_top_dp(*m, n, config.fault.placement);
        Placement target = rec.placement;
        if (config.fault.exhaustive_recovery) {
          ChainSearchConfig cc;
          cc.budget = config.fault.budget;
          cc.initial = target;
          const ChainSearchResult refined = solve_top_exhaustive(*m, n, cc);
          if (!refined.proven_optimal) ++r.recovery_truncations;
          target = refined.placement;
        }
        double distance = 0.0;
        for (std::size_t j = 0; j < run.placement.size(); ++j) {
          if (run.placement[j] == target[j]) continue;
          ++r.recovery_migrations;
          distance += apsp.cost(run.placement[j], target[j]);
        }
        r.recovery_cost = config.fault.mu * distance;
        run.placement = std::move(target);
      }

      // 5. Policy, or a bounded-staleness hold. Held shards charge the
      // exact communication cost of the kept placement on the *refreshed*
      // model — never a stale estimate (kFrozen excepted, as in the
      // monolithic ladder).
      EpochDecision& d = r.d;
      if (hour == Hour{0}) {
        d.comm_cost = sh.model->communication_cost(run.placement);
        r.resolved = true;
      } else if (frozen) {
        d.comm_cost = run.last_comm;
        r.held = true;
      } else if (refresh_only) {
        d.comm_cost = m->communication_cost(run.placement);
        r.held = true;
      } else {
        const bool resolve =
            sharded.resolve_churn_fraction <= 0.0 || faults_active ||
            stranded || run.fail_streak > 0 ||
            static_cast<double>(run.churned) >=
                sharded.resolve_churn_fraction *
                    static_cast<double>(std::max(sh.live, 1)) ||
            run.staleness >= sharded.max_staleness;
        if (!resolve) {
          d.comm_cost = m->communication_cost(run.placement);
          r.held = true;
          ++run.staleness;
        } else {
          if (run.fail_streak > 0) r.retried = true;
          SimState st;
          st.flows = sh.flows;
          st.placement = run.placement;
          try {
            d = run.policy->on_epoch(*m, st);
            try {
              PPDC_REQUIRE(st.placement.size() == static_cast<std::size_t>(n),
                           "placement length changed");
              validate_placement(m->apsp().graph(), st.placement);
              if (faults_active) {
                for (const NodeId sw : st.placement) {
                  PPDC_REQUIRE(degraded->in_core(sw),
                               "VNF placed on a dead or unreachable switch");
                }
              }
            } catch (const PpdcError& e) {
              throw PpdcError("policy '" + run.policy->name() +
                              "' produced an invalid placement for shard '" +
                              sh.name + "' at epoch " +
                              std::to_string(hour.value()) + ": " + e.what());
            }
          } catch (const PpdcError&) {
            // Failure containment: with the ladder enabled the throw is
            // absorbed per shard — this shard holds its placement, gets
            // charged the exactly refreshed cost, and the post-merge
            // ladder block quarantines it; every other shard's epoch is
            // untouched. Without the ladder the monolithic contract
            // applies: the run aborts.
            if (!config.ladder.enabled) throw;
            d = EpochDecision{};
            d.policy_failed = true;
            d.comm_cost = m->communication_cost(run.placement);
          }
          if (!d.policy_failed) {
            PPDC_REQUIRE(
                d.moved_flows.empty(),
                "policy '" + run.policy->name() +
                    "' relocated VM endpoints (EpochDecision::moved_flows) "
                    "at epoch " + std::to_string(hour.value()) +
                    ": VM-migration policies such as PLAN/MCF are not "
                    "supported by the sharded engine (shard flow vectors "
                    "are private) — run them on the monolithic "
                    "run_simulation, or use a placement policy "
                    "(NoMigration/mPareto/Optimal/Resolve) here");
            run.placement = st.placement;
            if (config.downtime_factor > 0.0) {
              d.migration_cost += config.downtime_factor * m->total_rate() *
                                  d.migration_distance;
            }
          }
          r.resolved = true;
          run.staleness = 0;
          run.churned = 0;
        }
      }
      run.last_comm = d.comm_cost;
    };

    // Cooperative cancellation is honored at *shard* boundaries: a worker
    // stops pulling shards the moment the flag flips, so a SIGINT during
    // a million-flow epoch responds in milliseconds instead of waiting
    // out the epoch. The partially solved epoch is abandoned wholesale
    // (SimInterrupted below) — mutated state never escapes because a
    // cancelled run is rerun (or journal-resumed) from a clean snapshot.
    const std::atomic<bool>* cancel = config.cancel;
    auto cancelled = [&]() {
      return cancel != nullptr && cancel->load(std::memory_order_relaxed);
    };
    const int pool = std::min(pool_want, num_shards);
    if (pool <= 1) {
      for (int s = 0; s < num_shards; ++s) {
        if (cancelled()) break;
        try {
          shard_epoch(s);
        } catch (...) {
          errors[static_cast<std::size_t>(s)] = std::current_exception();
          break;
        }
      }
    } else {
      std::atomic<int> next{0};
      auto worker = [&]() noexcept {
        for (;;) {
          if (cancelled()) return;
          const int s = next.fetch_add(1, std::memory_order_relaxed);
          if (s >= num_shards) return;
          try {
            shard_epoch(s);
          } catch (...) {
            errors[static_cast<std::size_t>(s)] = std::current_exception();
          }
        }
      };
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(pool));
      for (int t = 0; t < pool; ++t) threads.emplace_back(worker);
      for (std::thread& t : threads) t.join();
    }
    if (cancelled()) {
      emit([&](EpochObserver& o) { o.on_interrupted(hour); });
      throw SimInterrupted("simulation cancelled inside epoch " +
                           std::to_string(hour.value()) + " of " +
                           std::to_string(config.hours));
    }
    // Deterministic error surfacing: first failing shard in pod order.
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }

    // 6. Fixed-order merge: sums accumulate in shard order, so the
    // merged decision is a pure function of shard state — identical at
    // every thread count. The merged rung is the worst rung any shard
    // executed at; quarantined shards (failure backoff, rung below
    // kFull) accrue the shard-SLA penalty on their served rate.
    EpochDecision d;
    int quarantined = 0;
    double unserved = 0.0;
    int recovery_migrations = 0;
    double recovery_cost = 0.0;
    for (int s = 0; s < num_shards; ++s) {
      const ShardEpochResult& r = results[static_cast<std::size_t>(s)];
      const ShardRun& run = runs[static_cast<std::size_t>(s)];
      quarantined += r.quarantined;
      unserved += r.unserved;
      recovery_migrations += r.recovery_migrations;
      recovery_cost += r.recovery_cost;
      d.comm_cost += r.d.comm_cost;
      d.migration_cost += r.d.migration_cost;
      d.migration_distance += r.d.migration_distance;
      d.vnf_migrations += r.d.vnf_migrations;
      d.vm_migrations += r.d.vm_migrations;
      d.truncated_solves += r.d.truncated_solves + r.recovery_truncations;
      d.resolved_shards += r.resolved ? 1 : 0;
      d.held_shards += r.held ? 1 : 0;
      if (r.d.policy_failed) d.policy_failed = true;
      if (static_cast<int>(run.rung) > static_cast<int>(d.rung)) {
        d.rung = run.rung;
      }
      if (r.retried) ++d.shard_retries;
      if (run.fail_streak > 0 && run.rung != DegradationRung::kFull) {
        ++d.quarantined_shards;
        d.shard_penalty += sharded.quarantine_sla * r.served_rate;
      }
    }
    const double epoch_penalty = config.fault.quarantine_penalty * unserved;
    if (quarantined > 0) {
      emit([&](EpochObserver& o) {
        o.on_quarantine(hour, quarantined, unserved, epoch_penalty);
      });
    }
    if (blackout) {
      d.service_down = true;
      emit([&](EpochObserver& o) { o.on_blackout(hour); });
    } else if (recovery_migrations > 0) {
      emit([&](EpochObserver& o) {
        o.on_recovery(hour, recovery_migrations, recovery_cost);
      });
    }
    d.switch_failures = events.switch_failures;
    d.link_failures = events.link_failures;
    d.repairs = events.repairs;
    d.recovery_migrations = recovery_migrations;
    d.recovery_cost = recovery_cost;
    d.quarantined_flows = quarantined;
    d.quarantine_penalty = epoch_penalty;
    if (d.truncated_solves > 0) {
      emit([&](EpochObserver& o) {
        o.on_budget_truncation(hour, d.truncated_solves);
      });
    }
    emit([&](EpochObserver& o) {
      o.on_shard_batch(hour, d.resolved_shards, d.held_shards, epoch_churn);
    });
    emit([&](EpochObserver& o) { o.on_epoch_end(hour, d); });

    // 7. Per-shard ladder transitions, evaluated in fixed shard order
    // after the merge (many private control loops, one deterministic
    // event stream). Trip priority per shard mirrors the monolithic
    // ladder: policy-throw > blackout > solve-budget > quarantine.
    std::uint32_t epoch_ladder_steps = 0;
    if (config.ladder.enabled) {
      for (int s = 0; s < num_shards; ++s) {
        ShardRun& run = runs[static_cast<std::size_t>(s)];
        const ShardEpochResult& r = results[static_cast<std::size_t>(s)];
        if (r.retried) {
          const bool healed = !r.d.policy_failed;
          emit([&](EpochObserver& o) {
            o.on_shard_retry(hour, s, shard_names[static_cast<std::size_t>(s)],
                             healed);
          });
          if (healed) run.fail_streak = 0;
        }
        const char* trip = nullptr;
        const ShardedCostModel::Shard& sh = shards.shard(s);
        if (r.d.policy_failed) {
          trip = "policy-throw";
        } else if (blackout) {
          trip = "blackout";
        } else if (config.ladder.trip_truncations > 0 &&
                   r.d.truncated_solves + r.recovery_truncations >=
                       config.ladder.trip_truncations) {
          trip = "solve-budget";
        } else if (static_cast<double>(r.quarantined) >
                   config.ladder.max_quarantined_fraction *
                       static_cast<double>(sh.flows.size())) {
          trip = "quarantine";
        }
        if (trip != nullptr) {
          run.clean_streak = 0;
          if (r.d.policy_failed) {
            ++run.fail_streak;
            const int need = required_clean_epochs(
                s, run.fail_streak, config.ladder.recovery_epochs);
            emit([&](EpochObserver& o) {
              o.on_shard_quarantine(hour, s,
                                    shard_names[static_cast<std::size_t>(s)],
                                    run.fail_streak, need);
            });
          }
          if (run.rung != DegradationRung::kFrozen) {
            const DegradationRung from = run.rung;
            run.rung =
                static_cast<DegradationRung>(static_cast<int>(run.rung) + 1);
            ++epoch_ladder_steps;
            emit([&](EpochObserver& o) {
              o.on_shard_ladder_transition(
                  hour, s, shard_names[static_cast<std::size_t>(s)], from,
                  run.rung, trip);
            });
          }
        } else {
          ++run.clean_streak;
          const int need = required_clean_epochs(
              s, run.fail_streak, config.ladder.recovery_epochs);
          if (run.rung != DegradationRung::kFull &&
              run.clean_streak >= need) {
            const DegradationRung from = run.rung;
            run.rung =
                static_cast<DegradationRung>(static_cast<int>(run.rung) - 1);
            run.clean_streak = 0;
            ++epoch_ladder_steps;
            emit([&](EpochObserver& o) {
              o.on_shard_ladder_transition(
                  hour, s, shard_names[static_cast<std::size_t>(s)], from,
                  run.rung, "recovered");
            });
          }
        }
      }
    }

    // 8. Runtime audit (after the ladder block, like the monolithic
    // engine): each shard's epoch re-derived from scratch in fixed shard
    // order, then the merged epoch's global invariants.
    if (auditor) {
      for (int s = 0; s < num_shards; ++s) {
        const ShardRun& run = runs[static_cast<std::size_t>(s)];
        const ShardEpochResult& r = results[static_cast<std::size_t>(s)];
        ShardAuditContext sc;
        sc.epoch = hour;
        sc.shard = s;
        sc.name = &shard_names[static_cast<std::size_t>(s)];
        sc.model = (faults_active && run.degraded_model)
                       ? run.degraded_model.get()
                       : shards.shard(s).model.get();
        sc.flows = &shards.shard(s).flows;
        sc.placement = &run.placement;
        sc.charged_comm = r.d.comm_cost;
        sc.frozen = r.frozen;
        sc.service_down = blackout;
        sc.degraded = degraded.get();
        sc.n = n;
        auditor->check_shard_epoch(sc);
      }
      ShardedAuditContext gc;
      gc.epoch = hour;
      gc.shards = &shards;
      gc.global_flows = &workload.flows();
      gc.decision = &d;
      gc.degraded = degraded.get();
      gc.injector = injector ? &*injector : nullptr;
      auditor->check_epoch(gc);
    }

    // 9. Epoch journal: append this epoch's record and, at the
    // configured cadence, rewrite the file with a fresh resume-state
    // frame (skipped after the final epoch — the run is complete and the
    // caller deletes the journal once the cell lands durably upstream).
    if (journaling) {
      EpochRecord rec;
      rec.decision = d;
      rec.ladder_steps = epoch_ladder_steps;
      journal.epochs.push_back(std::move(rec));
      const bool last = hour.value() + 1 == config.hours;
      if (!last &&
          (hour.value() + 1) % sharded.epoch_checkpoint_every == 0) {
        journal.shards.clear();
        journal.shards.reserve(static_cast<std::size_t>(num_shards));
        for (int s = 0; s < num_shards; ++s) {
          const ShardRun& run = runs[static_cast<std::size_t>(s)];
          ShardResumeState st;
          st.shard = shards.shard_snapshot(s);
          st.placement = run.placement;
          st.last_comm = run.last_comm;
          st.staleness = run.staleness;
          st.churned = run.churned;
          st.resync_pending = run.resync_pending;
          st.rung = static_cast<std::uint8_t>(run.rung);
          st.clean_streak = run.clean_streak;
          st.fail_streak = run.fail_streak;
          journal.shards.push_back(std::move(st));
        }
        journal.workload = workload.snapshot();
        write_epoch_journal(sharded.epoch_journal, journal);
      }
    }
  }
  emit([&](EpochObserver& o) { o.on_run_end(); });
  SimTrace trace = recorder.take();
  if (auditor) {
    trace.audited_epochs = auditor->checked_epochs();
    auditor->check_run(trace);
  }
  return trace;
}

}  // namespace ppdc
