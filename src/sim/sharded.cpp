#include "sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/chain_search.hpp"
#include "core/cost_model.hpp"
#include "core/placement_dp.hpp"
#include "fault/degraded.hpp"
#include "fault/fault.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "util/ids.hpp"
#include "util/require.hpp"
#include "workload/diurnal.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

namespace {

/// Persistent per-shard runtime state across epochs.
struct ShardRun {
  Placement placement;
  std::unique_ptr<MigrationPolicy> policy;
  std::unique_ptr<CostModel> degraded_model;
  double last_comm = 0.0;     ///< stale estimate charged at kFrozen
  int staleness = 0;          ///< consecutive held epochs
  int churned = 0;            ///< churned flows since the last re-solve
  bool resync_pending = false;  ///< primary bases stale after faults
};

/// One shard's contribution to one epoch, merged in fixed shard order.
struct ShardEpochResult {
  EpochDecision d;
  int quarantined = 0;
  double unserved = 0.0;
  int recovery_migrations = 0;
  double recovery_cost = 0.0;
  int recovery_truncations = 0;
  bool resolved = false;
  bool held = false;
};

}  // namespace

SimTrace run_sharded_simulation(const AllPairs& apsp, const ShardMap& map,
                                StreamingWorkload& workload, int n,
                                const SimConfig& config,
                                const ShardedStreamingConfig& sharded,
                                const MigrationPolicy& prototype,
                                EpochObserver* observer) {
  PPDC_REQUIRE(!workload.flows().empty(),
               "simulation needs at least one flow");
  PPDC_REQUIRE(config.hours >= 1, "simulation needs at least one hour");
  PPDC_REQUIRE(config.fault.mu >= 0.0,
               "negative recovery migration coefficient");
  PPDC_REQUIRE(config.fault.quarantine_penalty >= 0.0,
               "negative quarantine penalty");
  PPDC_REQUIRE(config.ladder.max_quarantined_fraction >= 0.0 &&
                   config.ladder.max_quarantined_fraction <= 1.0,
               "ladder quarantine trip must be a fraction in [0,1]");
  PPDC_REQUIRE(config.ladder.trip_truncations >= 0,
               "negative ladder truncation trip");
  PPDC_REQUIRE(config.ladder.recovery_epochs >= 1,
               "ladder recovery needs at least one clean epoch");
  PPDC_REQUIRE(!config.rate_schedule,
               "the sharded engine rides the grouped diurnal fast path; "
               "custom rate schedules are monolithic-only");
  PPDC_REQUIRE(!config.audit.enabled,
               "runtime invariant auditing reasons over one monolithic "
               "model and is not supported by the sharded engine");
  PPDC_REQUIRE(sharded.resolve_churn_fraction >= 0.0 &&
                   sharded.resolve_churn_fraction <= 1.0,
               "resolve_churn_fraction outside [0,1]");
  PPDC_REQUIRE(sharded.max_staleness >= 1,
               "bounded staleness needs max_staleness >= 1");

  const Graph& graph = apsp.graph();
  std::optional<FaultInjector> injector;
  if (!config.faults.empty()) {
    injector.emplace(graph, config.faults);
    PPDC_REQUIRE(config.faults.front().epoch >= Hour{1},
                 "fault events must start at epoch 1 (the initial placement "
                 "sees the pristine fabric)");
  }

  // Global diurnal group domain: every shard's scale vector has this
  // length. Streaming arrivals draw from the same generator as the
  // initial population and may introduce either coast, so a churning run
  // widens the domain to at least the two-coast model even when the
  // initial draw happened to be single-group.
  const StreamingChurnConfig& churn_cfg = workload.churn_config();
  const bool streaming = churn_cfg.arrivals_per_epoch > 0 ||
                         churn_cfg.departure_prob > 0.0 ||
                         churn_cfg.rerate_prob > 0.0;
  int n_groups = num_groups(groups_of(workload.flows()));
  if (streaming) n_groups = std::max(n_groups, 2);

  ShardedCostModel shards(apsp, map, workload.flows(), n_groups);
  const int num_shards = shards.num_shards();
  auto scales_at = [&](Hour hour) {
    return config.diurnal.group_scales(hour, n_groups);
  };

  // Hour 0: per-shard initial traffic-optimal placement on the pristine
  // fabric (mirrors the monolithic hour-0 TOP solve per shard).
  std::vector<ShardRun> runs(static_cast<std::size_t>(num_shards));
  {
    const std::vector<double> scales0 = scales_at(Hour{0});
    for (int s = 0; s < num_shards; ++s) {
      ShardedCostModel::Shard& sh = shards.shard(s);
      set_rates(sh.flows, diurnal_rates_grouped(config.diurnal, sh.base_rates,
                                                sh.groups, Hour{0}));
      sh.model->refresh_scaled(scales0);
      ShardRun& run = runs[static_cast<std::size_t>(s)];
      run.placement =
          solve_top_dp(*sh.model, n, config.initial_placement).placement;
      run.policy = prototype.clone();
      PPDC_REQUIRE(run.policy != nullptr,
                   "policy '" + prototype.name() + "' returned a null clone()");
    }
  }
  Placement merged_initial;
  merged_initial.reserve(static_cast<std::size_t>(num_shards * n));
  for (const ShardRun& run : runs) {
    merged_initial.insert(merged_initial.end(), run.placement.begin(),
                          run.placement.end());
  }

  TraceRecorder recorder;
  auto emit = [&](auto&& fn) {
    fn(static_cast<EpochObserver&>(recorder));
    if (observer != nullptr) fn(*observer);
  };
  emit([&](EpochObserver& o) {
    o.on_run_begin(Hour{config.hours}, merged_initial);
  });

  std::unique_ptr<DegradedNetwork> degraded;

  DegradationRung rung = DegradationRung::kFull;
  int clean_streak = 0;

  const int pool_want = resolve_experiment_threads(sharded.threads);

  for (const Hour hour : id_range(Hour{0}, Hour{config.hours})) {
    if (config.cancel != nullptr &&
        config.cancel->load(std::memory_order_relaxed)) {
      emit([&](EpochObserver& o) { o.on_interrupted(hour); });
      throw SimInterrupted("simulation cancelled before epoch " +
                           std::to_string(hour.value()) + " of " +
                           std::to_string(config.hours));
    }
    emit([&](EpochObserver& o) { o.on_epoch_begin(hour); });

    // 0. Inter-epoch churn: the workload advances once per epoch from
    // hour 1 on, and the shards mirror the churn with O(|V_s|) patches.
    int epoch_churn = 0;
    if (hour >= Hour{1}) {
      const FlowChurn churn = workload.advance();
      epoch_churn = static_cast<int>(churn.total());
      if (epoch_churn > 0) {
        const std::vector<int> touched =
            shards.apply_churn(workload.flows(), churn);
        for (int s = 0; s < num_shards; ++s) {
          runs[static_cast<std::size_t>(s)].churned +=
              touched[static_cast<std::size_t>(s)];
        }
      }
    }

    // 1. Fault events and the shared degraded view (read-only for the
    // parallel shard phase, so it is rebuilt here on the main thread).
    EpochFaults events;
    if (injector && hour >= Hour{1}) events = injector->advance_to(hour);
    if (events.switch_failures + events.link_failures + events.repairs > 0) {
      emit([&](EpochObserver& o) { o.on_faults(hour, events); });
    }
    const bool faults_active = injector && injector->any_faults_active();
    if (events.topology_changed) {
      for (ShardRun& run : runs) run.degraded_model.reset();
      degraded.reset();
      if (faults_active) {
        degraded = std::make_unique<DegradedNetwork>(
            graph, injector->dead_nodes(), injector->dead_edges());
      }
    }
    const bool blackout = faults_active && !degraded->core_can_host(n);

    const bool frozen =
        config.ladder.enabled && rung == DegradationRung::kFrozen;
    const bool refresh_only =
        config.ladder.enabled && rung == DegradationRung::kRefreshOnly;
    const std::vector<double> scales = scales_at(hour);

    // 2.-5. Per-shard epoch work — traffic, quarantine, model
    // maintenance, emergency recovery, policy or bounded-staleness hold.
    // Shards are independent; results merge in fixed shard order below.
    std::vector<ShardEpochResult> results(
        static_cast<std::size_t>(num_shards));
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(num_shards));

    auto shard_epoch = [&](int s) {
      ShardedCostModel::Shard& sh = shards.shard(s);
      ShardRun& run = runs[static_cast<std::size_t>(s)];
      ShardEpochResult& r = results[static_cast<std::size_t>(s)];

      // 2. This epoch's traffic; flows cut off from the core quarantine.
      std::vector<double> rates =
          diurnal_rates_grouped(config.diurnal, sh.base_rates, sh.groups,
                                hour);
      if (faults_active) {
        for (std::size_t i = 0; i < sh.flows.size(); ++i) {
          const VmFlow& f = sh.flows[i];
          if (sh.base_rates[i] == 0.0) continue;  // vacant slot
          const bool served = !blackout && degraded->in_core(f.src_host) &&
                              degraded->in_core(f.dst_host);
          if (!served) {
            ++r.quarantined;
            r.unserved += rates[i];
            rates[i] = 0.0;
          }
        }
      }
      set_rates(sh.flows, rates);

      if (blackout) {
        // Nothing is served and nothing is charged; the stale estimate a
        // later frozen epoch would charge is this epoch's zero (exactly
        // the monolithic last_comm_cost bookkeeping).
        r.d.service_down = true;
        run.last_comm = 0.0;
        return;
      }

      // 3. Cost-model maintenance (mirrors the monolithic engine: a
      // dedicated full-rescan model over the degraded metric while faults
      // are active; group recombination on the pristine path, with a lazy
      // base resync when the fabric heals).
      CostModel* m = sh.model.get();
      if (faults_active) {
        if (!run.degraded_model) {
          run.degraded_model =
              std::make_unique<CostModel>(degraded->apsp(), sh.flows);
          run.degraded_model->restrict_candidates(degraded->core_switches());
        } else if (!frozen) {
          run.degraded_model->refresh();
        }
        m = run.degraded_model.get();
        run.resync_pending = true;
      } else if (!frozen) {
        if (run.resync_pending) {
          sh.model->refresh();
          run.resync_pending = false;
        }
        sh.model->refresh_scaled(scales);
      }

      // 4. Emergency re-placement of VNFs stranded outside the core.
      bool stranded = false;
      if (faults_active) {
        for (const NodeId sw : run.placement) {
          if (!degraded->in_core(sw)) {
            stranded = true;
            break;
          }
        }
      }
      if (stranded) {
        const PlacementResult rec =
            solve_top_dp(*m, n, config.fault.placement);
        Placement target = rec.placement;
        if (config.fault.exhaustive_recovery) {
          ChainSearchConfig cc;
          cc.budget = config.fault.budget;
          cc.initial = target;
          const ChainSearchResult refined = solve_top_exhaustive(*m, n, cc);
          if (!refined.proven_optimal) ++r.recovery_truncations;
          target = refined.placement;
        }
        double distance = 0.0;
        for (std::size_t j = 0; j < run.placement.size(); ++j) {
          if (run.placement[j] == target[j]) continue;
          ++r.recovery_migrations;
          distance += apsp.cost(run.placement[j], target[j]);
        }
        r.recovery_cost = config.fault.mu * distance;
        run.placement = std::move(target);
      }

      // 5. Policy, or a bounded-staleness hold. Held shards charge the
      // exact communication cost of the kept placement on the *refreshed*
      // model — never a stale estimate (kFrozen excepted, as in the
      // monolithic ladder).
      EpochDecision& d = r.d;
      if (hour == Hour{0}) {
        d.comm_cost = sh.model->communication_cost(run.placement);
        r.resolved = true;
      } else if (frozen) {
        d.comm_cost = run.last_comm;
        r.held = true;
      } else if (refresh_only) {
        d.comm_cost = m->communication_cost(run.placement);
        r.held = true;
      } else {
        const bool resolve =
            sharded.resolve_churn_fraction <= 0.0 || faults_active ||
            stranded ||
            static_cast<double>(run.churned) >=
                sharded.resolve_churn_fraction *
                    static_cast<double>(std::max(sh.live, 1)) ||
            run.staleness >= sharded.max_staleness;
        if (!resolve) {
          d.comm_cost = m->communication_cost(run.placement);
          r.held = true;
          ++run.staleness;
        } else {
          SimState st;
          st.flows = sh.flows;
          st.placement = run.placement;
          try {
            d = run.policy->on_epoch(*m, st);
            try {
              PPDC_REQUIRE(st.placement.size() == static_cast<std::size_t>(n),
                           "placement length changed");
              validate_placement(m->apsp().graph(), st.placement);
              if (faults_active) {
                for (const NodeId sw : st.placement) {
                  PPDC_REQUIRE(degraded->in_core(sw),
                               "VNF placed on a dead or unreachable switch");
                }
              }
            } catch (const PpdcError& e) {
              throw PpdcError("policy '" + run.policy->name() +
                              "' produced an invalid placement for shard '" +
                              sh.name + "' at epoch " +
                              std::to_string(hour.value()) + ": " + e.what());
            }
          } catch (const PpdcError&) {
            if (!config.ladder.enabled) throw;
            d = EpochDecision{};
            d.policy_failed = true;
            d.comm_cost = m->communication_cost(run.placement);
          }
          if (!d.policy_failed) {
            PPDC_REQUIRE(
                d.moved_flows.empty(),
                "policy '" + run.policy->name() +
                    "' relocated VM endpoints at epoch " +
                    std::to_string(hour.value()) +
                    ": VM-migration policies are not supported by the "
                    "sharded engine (shard flow vectors are private)");
            run.placement = st.placement;
            if (config.downtime_factor > 0.0) {
              d.migration_cost += config.downtime_factor * m->total_rate() *
                                  d.migration_distance;
            }
          }
          r.resolved = true;
          run.staleness = 0;
          run.churned = 0;
        }
      }
      run.last_comm = d.comm_cost;
    };

    const int pool = std::min(pool_want, num_shards);
    if (pool <= 1) {
      for (int s = 0; s < num_shards; ++s) {
        try {
          shard_epoch(s);
        } catch (...) {
          errors[static_cast<std::size_t>(s)] = std::current_exception();
          break;
        }
      }
    } else {
      std::atomic<int> next{0};
      auto worker = [&]() noexcept {
        for (;;) {
          const int s = next.fetch_add(1, std::memory_order_relaxed);
          if (s >= num_shards) return;
          try {
            shard_epoch(s);
          } catch (...) {
            errors[static_cast<std::size_t>(s)] = std::current_exception();
          }
        }
      };
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(pool));
      for (int t = 0; t < pool; ++t) threads.emplace_back(worker);
      for (std::thread& t : threads) t.join();
    }
    // Deterministic error surfacing: first failing shard in pod order.
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }

    // 6. Fixed-order merge: sums accumulate in shard order, so the
    // merged decision is a pure function of shard state — identical at
    // every thread count.
    EpochDecision d;
    int quarantined = 0;
    double unserved = 0.0;
    int recovery_migrations = 0;
    double recovery_cost = 0.0;
    for (const ShardEpochResult& r : results) {
      quarantined += r.quarantined;
      unserved += r.unserved;
      recovery_migrations += r.recovery_migrations;
      recovery_cost += r.recovery_cost;
      d.comm_cost += r.d.comm_cost;
      d.migration_cost += r.d.migration_cost;
      d.migration_distance += r.d.migration_distance;
      d.vnf_migrations += r.d.vnf_migrations;
      d.vm_migrations += r.d.vm_migrations;
      d.truncated_solves += r.d.truncated_solves + r.recovery_truncations;
      d.resolved_shards += r.resolved ? 1 : 0;
      d.held_shards += r.held ? 1 : 0;
      if (r.d.policy_failed) d.policy_failed = true;
    }
    const double epoch_penalty = config.fault.quarantine_penalty * unserved;
    if (quarantined > 0) {
      emit([&](EpochObserver& o) {
        o.on_quarantine(hour, quarantined, unserved, epoch_penalty);
      });
    }
    if (blackout) {
      d.service_down = true;
      emit([&](EpochObserver& o) { o.on_blackout(hour); });
    } else if (recovery_migrations > 0) {
      emit([&](EpochObserver& o) {
        o.on_recovery(hour, recovery_migrations, recovery_cost);
      });
    }
    d.switch_failures = events.switch_failures;
    d.link_failures = events.link_failures;
    d.repairs = events.repairs;
    d.recovery_migrations = recovery_migrations;
    d.recovery_cost = recovery_cost;
    d.quarantined_flows = quarantined;
    d.quarantine_penalty = epoch_penalty;
    d.rung = rung;
    if (d.truncated_solves > 0) {
      emit([&](EpochObserver& o) {
        o.on_budget_truncation(hour, d.truncated_solves);
      });
    }
    emit([&](EpochObserver& o) {
      o.on_shard_batch(hour, d.resolved_shards, d.held_shards, epoch_churn);
    });
    emit([&](EpochObserver& o) { o.on_epoch_end(hour, d); });

    // 7. Ladder transition on the merged epoch (the global rung governs
    // every shard — one control loop, many solvers).
    if (config.ladder.enabled) {
      const char* trip = nullptr;
      if (d.policy_failed) {
        trip = "policy-throw";
      } else if (blackout) {
        trip = "blackout";
      } else if (config.ladder.trip_truncations > 0 &&
                 d.truncated_solves >= config.ladder.trip_truncations) {
        trip = "solve-budget";
      } else if (static_cast<double>(quarantined) >
                 config.ladder.max_quarantined_fraction *
                     static_cast<double>(workload.flows().size())) {
        trip = "quarantine";
      }
      if (trip != nullptr) {
        clean_streak = 0;
        if (rung != DegradationRung::kFrozen) {
          const DegradationRung from = rung;
          rung = static_cast<DegradationRung>(static_cast<int>(rung) + 1);
          emit([&](EpochObserver& o) {
            o.on_ladder_transition(hour, from, rung, trip);
          });
        }
      } else {
        ++clean_streak;
        if (rung != DegradationRung::kFull &&
            clean_streak >= config.ladder.recovery_epochs) {
          const DegradationRung from = rung;
          rung = static_cast<DegradationRung>(static_cast<int>(rung) - 1);
          clean_streak = 0;
          emit([&](EpochObserver& o) {
            o.on_ladder_transition(hour, from, rung, "recovered");
          });
        }
      }
    }
  }
  emit([&](EpochObserver& o) { o.on_run_end(); });
  return recorder.take();
}

}  // namespace ppdc
