// Crash-safe checkpointing of the experiment grid (DESIGN.md §10).
//
// A long campaign over the (trial, policy) SimJob grid must survive a
// crash, an OOM kill, or a ^C without discarding completed work. The
// journal persists one record per *terminal* job — the job's merged
// RunningStats bundle in raw IEEE bits, its outcome, attempt count and
// (for quarantined cells) the exception text — plus a header carrying a
// per-component fingerprint of the experiment configuration. A
// re-launched run with the same journal path validates the fingerprint,
// skips journaled cells and merges them into the reduction at their fixed
// trial-major position, so a resumed campaign is bit-identical to an
// uninterrupted one at every thread count.
//
// Durability model: the journal is rewritten through a `write to
// <path>.tmp + fsync + rename over <path>` cycle on every append, so the
// file visible at <path> is always a complete, internally consistent
// journal — a crash at any instant loses at most the in-flight record.
// Each frame (header and records alike) is CRC32-framed
// (util/checksum.hpp); should a non-atomic filesystem still tear the
// file, the loader verifies every frame and drops the corrupt tail with
// a warning instead of poisoning the resume (the dropped jobs simply
// rerun). Journals are host-endian scratch artifacts for resuming on the
// same machine, not interchange files.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/sharded_cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/policy.hpp"
#include "sim/sharded.hpp"
#include "topology/topology.hpp"
#include "util/require.hpp"
#include "workload/streaming.hpp"

namespace ppdc {

/// Terminal outcome of one (trial, policy) SimJob.
enum class JobOutcome : std::uint8_t {
  kOk = 0,         ///< completed cleanly
  kTruncated = 1,  ///< completed, but >= 1 solver fell back on budget expiry
  kFailed = 2,     ///< threw; stats absent (terminal only under keep_going)
};

const char* to_string(JobOutcome outcome) noexcept;

/// Per-component 64-bit hashes of everything that determines experiment
/// *results* (never wall-clock-only knobs: thread count, checkpoint path,
/// keep_going and retry_limit are deliberately excluded, as is
/// SimConfig::cancel). Split per component so a mismatch can name what
/// diverged instead of reporting a bare hash inequality.
struct ExperimentFingerprint {
  std::uint64_t topology = 0;        ///< nodes, edges, weights, racks
  std::uint64_t workload = 0;        ///< seed, trials, generator config
  std::uint64_t fault_schedule = 0;  ///< full failure/repair timeline
  std::uint64_t policy_list = 0;     ///< ordered policy names
  std::uint64_t sim_config = 0;      ///< horizon, diurnal, fault knobs, ...
  bool operator==(const ExperimentFingerprint&) const = default;

  /// Names of the components on which *this differs from `other`
  /// ("topology", "workload", "fault schedule", "policy list",
  /// "sim config"), in that fixed order. Empty iff equal.
  std::vector<std::string> diff(const ExperimentFingerprint& other) const;
};

/// Computes the fingerprint of one run_experiment invocation. Policies
/// are fingerprinted by their ordered name() list — two configurations of
/// a policy that report the same name are indistinguishable here, so give
/// distinct display names to distinct configurations (the benches already
/// do: "mPareto-1e4" vs "mPareto-1e5").
ExperimentFingerprint fingerprint_experiment(
    const Topology& topo, const ExperimentConfig& config,
    const std::vector<const MigrationPolicy*>& policies);

/// One journaled (trial, policy) cell.
struct JobRecord {
  std::uint32_t trial = 0;
  std::uint32_t policy = 0;  ///< index into the experiment's policy list
  JobOutcome outcome = JobOutcome::kOk;
  std::uint32_t attempts = 1;  ///< total attempts including retries
  std::string policy_name;
  std::string error;      ///< what() of the final attempt (kFailed only)
  StatsBundle stats{0};   ///< single-trial bundle; empty when kFailed
};

/// Grid dimensions stored in the journal header (sanity bounds for the
/// records; the fingerprint is the real identity check).
struct JournalDims {
  std::uint32_t trials = 0;
  std::uint32_t policies = 0;
  std::uint32_t hours = 0;
  bool operator==(const JournalDims&) const = default;
};

/// Fingerprint-mismatch on resume: the journal belongs to a different
/// experiment. what() names the diverged components.
class CheckpointMismatchError : public PpdcError {
 public:
  using PpdcError::PpdcError;
};

/// Append-only journal of terminal SimJobs, durable per record.
class CheckpointJournal {
 public:
  /// Opens `path`: an existing journal is loaded and validated against
  /// (`fingerprint`, `dims`) — CheckpointMismatchError on divergence,
  /// PpdcError on an unreadable header; a missing file is created with a
  /// durable header. A corrupt record tail is dropped with a warning
  /// (see load_warning()); the dropped cells rerun.
  CheckpointJournal(std::string path, const ExperimentFingerprint& fingerprint,
                    const JournalDims& dims);

  /// Records recovered from a pre-existing journal, in file order
  /// (later records for the same cell supersede earlier ones).
  const std::vector<JobRecord>& resumed() const noexcept { return resumed_; }

  /// Non-empty when the loader dropped a corrupt/torn tail on open.
  const std::string& load_warning() const noexcept { return warning_; }

  /// Appends one terminal record durably (temp + fsync + rename).
  /// Thread-safe: concurrent SimJob workers may call it directly.
  void append(const JobRecord& record);

  const std::string& path() const noexcept { return path_; }

 private:
  std::mutex mu_;
  std::string path_;
  std::string buffer_;  ///< full serialized journal (header + records)
  std::vector<JobRecord> resumed_;
  std::string warning_;
  int appended_ = 0;
  int crash_after_ = 0;  ///< fault-injection hook; 0 = disabled
};

/// Parsed journal, for inspection/tooling/tests. No fingerprint check.
struct JournalContents {
  ExperimentFingerprint fingerprint;
  JournalDims dims;
  std::vector<JobRecord> records;
  /// Byte offset of each record's frame start (record_offsets[i] is where
  /// records[i] begins; truncating the file to record_offsets[k] leaves a
  /// valid journal holding exactly the first k records).
  std::vector<std::size_t> record_offsets;
  bool tail_dropped = false;  ///< a corrupt/torn tail was discarded
  std::string warning;        ///< where and why, when tail_dropped
};

/// Reads and frame-verifies a journal file. Throws PpdcError when the
/// file is missing or its header is unreadable; a bad record tail is
/// reported via tail_dropped/warning instead of thrown.
JournalContents read_journal(const std::string& path);

// ---------------------------------------------------------------------------
// Epoch-granular journal of one sharded run (DESIGN.md §15).
//
// The grid journal above is cell-granular: a killed job reruns from epoch
// 0. At l = 10^6 one cell is hours of work, so the sharded engine
// additionally journals *within* the cell: every merged epoch decision
// plus one trailing resume-state frame carrying everything mutable —
// per-shard placements and ladder scalars, the CostModel group state
// verbatim (its base vectors accumulate exact float patch history no
// rebuild reproduces), the StreamingWorkload flows/free-list/RNG cursor.
// The file is rewritten atomically (temp + fsync + rename) each
// checkpoint epoch, CRC32-framed like the grid journal, and keyed by a
// fingerprint of the run's entry state — a relaunch with a stale or
// foreign journal warns and starts fresh instead of resuming garbage.
// ---------------------------------------------------------------------------

/// One journaled epoch of a sharded run.
struct EpochRecord {
  EpochDecision decision;
  /// Shard ladder transitions emitted after this epoch (replayed into the
  /// TraceRecorder so SimTrace::ladder_transitions survives the resume).
  std::uint32_t ladder_steps = 0;
};

/// One shard's full mutable engine state at the journal's checkpoint.
struct ShardResumeState {
  ShardedCostModel::ShardSnapshot shard;
  Placement placement;
  double last_comm = 0.0;
  std::int32_t staleness = 0;
  std::int32_t churned = 0;
  bool resync_pending = false;
  std::uint8_t rung = 0;  ///< DegradationRung of the shard's ladder
  std::int32_t clean_streak = 0;
  std::int32_t fail_streak = 0;
};

/// Everything an epoch journal persists: the identity key, the replayable
/// epoch prefix, and the state to continue from. `epochs.size()` is the
/// first epoch a resumed run executes live.
struct EpochJournalState {
  std::uint64_t fingerprint = 0;  ///< fingerprint_sharded_run of the run
  std::uint32_t hours = 0;        ///< horizon (sanity bound)
  Placement merged_initial;       ///< on_run_begin payload of the trace
  std::vector<EpochRecord> epochs;
  std::vector<ShardResumeState> shards;  ///< fixed pod order
  StreamingWorkload::Snapshot workload;  ///< state *after* epoch epochs-1
};

/// Identity of one sharded run for the epoch journal: the run's entry
/// state (workload snapshot bytes before any epoch ran) plus every config
/// knob that shapes its trace. Wall-clock knobs (threads, journal paths,
/// checkpoint cadence) are excluded.
std::uint64_t fingerprint_sharded_run(
    const StreamingWorkload::Snapshot& entry_state, const SimConfig& config,
    const ShardedStreamingConfig& sharded, int n, int num_shards,
    const std::string& policy_name);

/// Serializes `state` and atomically replaces the journal at `path`.
/// Honors the PPDC_EPOCH_CRASH_AFTER=N fault-injection hook: the process
/// hard-exits (code 37) right after the N-th epoch-journal write of this
/// process becomes durable — the kill half of the kill-resume gate.
void write_epoch_journal(const std::string& path,
                         const EpochJournalState& state);

/// Loads the epoch journal at `path` into `out`. Returns false when the
/// file does not exist; throws PpdcError when it exists but is malformed
/// (bad magic/version/CRC or truncated — callers typically warn and start
/// fresh). A fingerprint mismatch is the caller's check: compare
/// `out.fingerprint` against fingerprint_sharded_run.
bool read_epoch_journal(const std::string& path, EpochJournalState& out);

/// Removes an epoch journal if present (idempotent; the runner calls this
/// once the cell's terminal record lands in the grid journal, and before
/// retry attempts so a retry never resumes the failed run's state).
void remove_epoch_journal(const std::string& path);

}  // namespace ppdc
