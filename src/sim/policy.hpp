// Migration-policy interface for the dynamic PPDC simulation (§VI,
// Fig. 11). Every hour, after traffic rates change, the engine hands the
// policy the refreshed cost model and the mutable system state; the policy
// may migrate VNFs (mPareto / frontier-exhaustive / exhaustive optimal) or
// VMs (PLAN / MCF) or do nothing (NoMigration), and reports what it spent.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/vm_migration.hpp"
#include "core/chain_search.hpp"
#include "core/cost_model.hpp"
#include "core/migration_pareto.hpp"
#include "core/placement_dp.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// Mutable world state owned by the simulation engine.
struct SimState {
  std::vector<VmFlow> flows;  ///< endpoints + current rates
  Placement placement;        ///< current VNF placement
};

/// Rung of the engine's graceful-degradation ladder (DESIGN.md §12).
/// Under sustained stress — solver budget blow-outs, a policy throwing,
/// too many quarantined flows, blackout — the engine steps down one rung
/// per stressed epoch and climbs back one rung per clean streak.
enum class DegradationRung : std::uint8_t {
  kFull = 0,         ///< normal operation: the policy solves the epoch
  kRefreshOnly = 1,  ///< placement held; only the exact cost refresh runs
  kFrozen = 2,       ///< placement and cost refresh frozen; stale accounting
};

/// Human-readable rung name ("full" / "refresh-only" / "frozen").
const char* to_string(DegradationRung rung);

/// What one policy invocation did in one epoch.
struct EpochDecision {
  double comm_cost = 0.0;       ///< C_a charged for the epoch
  double migration_cost = 0.0;  ///< migration traffic spent this epoch
  /// Total topology distance covered by this epoch's migrations (the
  /// Σ c(old, new) without the μ factor) — drives the optional downtime
  /// model (SimConfig::downtime_factor).
  double migration_distance = 0.0;
  int vnf_migrations = 0;
  int vm_migrations = 0;
  /// Ids of flows whose endpoints the policy relocated this epoch.
  /// Policies that mutate `SimState::flows` MUST report every touched flow
  /// here — the engine uses it to patch the cost model incrementally
  /// instead of re-scanning every flow (CostModel::endpoints_moved).
  std::vector<FlowId> moved_flows;
  /// Exponential solves behind this decision that exhausted their budget
  /// and fell back to the incumbent (the engine adds its own recovery
  /// refinements; observers see the sum via on_budget_truncation).
  int truncated_solves = 0;

  // Fault bookkeeping, filled in by the engine (all zero on a pristine
  // fabric; policies never touch these).
  int switch_failures = 0;     ///< switch failures applied this epoch
  int link_failures = 0;       ///< link failures applied this epoch
  int repairs = 0;             ///< switch + link repairs this epoch
  int recovery_migrations = 0; ///< VNFs force-moved off failed switches
  double recovery_cost = 0.0;  ///< μ-weighted emergency migration traffic
  int quarantined_flows = 0;   ///< flows cut off from the serving core
  double quarantine_penalty = 0.0;  ///< SLA penalty charged for them
  /// True when the serving core could not host the chain this epoch
  /// (blackout: no placement, every flow quarantined).
  bool service_down = false;
  /// Ladder rung the epoch *executed* at (kFull unless the ladder is
  /// enabled and had stepped down before this epoch). At kRefreshOnly
  /// the policy was skipped; at kFrozen comm_cost is the previous
  /// epoch's estimate (stale by design — the auditor exempts it).
  DegradationRung rung = DegradationRung::kFull;
  /// True when the ladder contained a policy throw this epoch (the
  /// pre-policy state was restored and the epoch charged at the held
  /// placement).
  bool policy_failed = false;

  // Shard bookkeeping (sim/sharded.hpp). The monolithic engine behaves
  // as one always-resolving shard: it stamps resolved=1/held=0 on every
  // epoch that charged a placement through the policy path (including
  // hour 0), resolved=0/held=1 on epochs that held it (kRefreshOnly /
  // kFrozen), and 0/0 on blackout epochs. The sharded engine counts its
  // shards the same way, so the single-shard run is field-for-field
  // identical to the monolithic trace.
  int resolved_shards = 0;  ///< shards whose placement was re-solved
  int held_shards = 0;      ///< shards that kept their placement

  // Per-shard failure containment (sim/sharded.hpp, DESIGN.md §15). A
  // shard whose policy clone throws is quarantined — placement held,
  // costs patched exactly, SLA-penalized — while the other shards keep
  // solving; the sharded engine fills these, the monolithic engine
  // leaves them zero.
  int quarantined_shards = 0;   ///< shards that spent this epoch quarantined
  int shard_retries = 0;        ///< backoff re-solve attempts this epoch
  double shard_penalty = 0.0;   ///< SLA penalty for quarantined shard-epochs
};

/// Interface implemented by every migration strategy.
///
/// Policies are *cloneable prototypes*: the experiment runner never calls
/// `on_epoch` on the instance it is handed — it derives one fresh clone
/// per (trial, policy) SimJob, so any mutable per-run state a policy
/// keeps is isolated per trial and safe to run in parallel. `clone()`
/// must produce an independent instance carrying the configuration but
/// none of the shared mutable state (a copy of `*this` is correct for
/// value-semantic policies).
class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;
  virtual std::string name() const = 0;
  /// Independent copy for one simulation run (the clone()/factory
  /// contract of the parallel experiment runner).
  virtual std::unique_ptr<MigrationPolicy> clone() const = 0;
  /// Retry hook of the experiment runner: when a job fails with
  /// TransientError and is re-attempted, the fresh clone of attempt a >= 1
  /// receives a deterministically resplit per-attempt stream here before
  /// its first epoch. Stochastic policies may re-derive tie-break state
  /// from it to escape the transient condition; deterministic policies
  /// (every built-in) ignore it — the default body draws nothing, so
  /// attempt 0 remains bit-identical to a runner without retry support.
  virtual void reseed(Rng& /*attempt_rng*/) {}
  /// Reacts to the epoch's (already refreshed) cost model; may mutate
  /// `state` (placement and/or flow endpoints). Endpoint mutations must be
  /// reported via EpochDecision::moved_flows so the engine can patch the
  /// cost model incrementally.
  virtual EpochDecision on_epoch(const CostModel& model, SimState& state) = 0;
};

/// Keeps the initial placement forever.
class NoMigrationPolicy final : public MigrationPolicy {
 public:
  std::string name() const override { return "NoMigration"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<NoMigrationPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override;
};

/// mPareto (Algorithm 5); optionally frontier-exhaustive ("Optimal" proxy
/// at k = 16 scale when `options.exhaustive_frontiers` is set).
class ParetoMigrationPolicy final : public MigrationPolicy {
 public:
  ParetoMigrationPolicy(double mu, ParetoMigrationOptions options = {},
                        std::string display_name = "mPareto");
  std::string name() const override { return name_; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<ParetoMigrationPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override;

 private:
  double mu_;
  ParetoMigrationOptions options_;
  std::string name_;
};

/// Exhaustive Algorithm 6 via branch and bound (tractable small PPDCs).
/// When the search is truncated (node or wall-clock budget exhausted,
/// proven_optimal = false) the policy degrades gracefully to mPareto and
/// keeps whichever answer is cheaper — both are warm-started at "stay
/// put", so the result is never worse than NoMigration.
class ExhaustiveMigrationPolicy final : public MigrationPolicy {
 public:
  ExhaustiveMigrationPolicy(double mu, ChainSearchConfig config = {});
  std::string name() const override { return "Optimal"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<ExhaustiveMigrationPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override;

 private:
  double mu_;
  ChainSearchConfig config_;
};

/// Re-solves TOP from scratch every epoch and jumps straight to the fresh
/// optimum, paying the full migration bill (ablation reference: what
/// mPareto's frontier scan saves against always re-placing).
class ResolvePlacementPolicy final : public MigrationPolicy {
 public:
  explicit ResolvePlacementPolicy(double mu, TopDpOptions options = {});
  std::string name() const override { return "Resolve"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<ResolvePlacementPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override;

 private:
  double mu_;
  TopDpOptions options_;
};

/// PLAN VM migration [17].
class PlanPolicy final : public MigrationPolicy {
 public:
  explicit PlanPolicy(VmMigrationConfig config);
  std::string name() const override { return "PLAN"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<PlanPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override;

 private:
  VmMigrationConfig config_;
};

/// MCF VM migration [24].
class McfPolicy final : public MigrationPolicy {
 public:
  explicit McfPolicy(VmMigrationConfig config);
  std::string name() const override { return "MCF"; }
  std::unique_ptr<MigrationPolicy> clone() const override {
    return std::make_unique<McfPolicy>(*this);
  }
  EpochDecision on_epoch(const CostModel& model, SimState& state) override;

 private:
  VmMigrationConfig config_;
};

}  // namespace ppdc
