// Runtime invariant auditing for the dynamic simulation (DESIGN.md §12).
//
// The engine's fault machinery, degradation ladder, and incremental
// cost-model maintenance each preserve invariants that no unit test can
// check across every epoch of a chaotic run: the placement must stay
// feasible on whatever is left of the fabric, the costs stamped into the
// trace must equal what the cost model would recompute from scratch, the
// injector's dead set and the degraded view must agree, and the observer
// event stream must be shaped like a run. `InvariantAuditor` is an
// opt-in per-epoch checker of exactly those properties: the engine
// constructs one per run when `AuditOptions::enabled` is set, feeds it
// the same event stream every other observer sees, and calls
// `check_epoch` after each epoch is fully costed. A violation throws
// `AuditError`, which carries a structured diagnostic (epoch, policy,
// violated invariant, offending FlowId / switch NodeId) on top of the
// formatted message.
//
// The auditor is a pure observer of one run on one thread — parallel
// experiment jobs each get their own instance (plain-data AuditOptions
// live in SimConfig; nothing is shared).
#pragma once

#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/sharded_cost_model.hpp"
#include "fault/degraded.hpp"
#include "fault/fault.hpp"
#include "graph/graph.hpp"
#include "sim/observer.hpp"
#include "sim/policy.hpp"
#include "util/ids.hpp"
#include "util/require.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// Knobs of the runtime invariant auditor (plain data, safe to copy into
/// every parallel simulation job).
struct AuditOptions {
  bool enabled = false;
  /// Cost-conservation tolerance: the per-epoch comm cost may differ from
  /// the recomputed Σ flow_cost by rel_tol x magnitude + abs_tol (the
  /// engine and the policies accumulate in different orders).
  double rel_tol = 1e-6;
  double abs_tol = 1e-6;
  /// Test-only breach hook: at this epoch the auditor checks a copy of
  /// the placement with its first VNF duplicated onto the second slot —
  /// a guaranteed feasibility violation — proving the detection and
  /// diagnostic path end to end. Leave invalid() (the default) outside
  /// tests.
  Hour corrupt_placement_epoch = Hour::invalid();
};

/// Structured description of one invariant violation.
struct AuditViolation {
  Hour epoch = Hour::invalid();
  std::string policy;
  /// One of "placement-feasibility", "cost-conservation",
  /// "injector-consistency", "id-map-consistency", "event-stream".
  std::string invariant;
  FlowId flow = FlowId::invalid();     ///< offending flow, when one exists
  NodeId node = kInvalidNode;          ///< offending switch, when one exists
  std::string shard;                   ///< offending shard name (sharded runs)
  std::string detail;                  ///< human-readable specifics
};

/// Thrown by InvariantAuditor on the first violated invariant.
class AuditError : public PpdcError {
 public:
  explicit AuditError(AuditViolation violation);
  const AuditViolation& violation() const noexcept { return violation_; }

 private:
  AuditViolation violation_;
};

/// Everything the auditor needs to re-derive one epoch's truth.
struct AuditContext {
  Hour epoch = Hour::invalid();
  /// The epoch's authoritative cost model (degraded model on faulty
  /// epochs, the primary model otherwise).
  const CostModel* model = nullptr;
  const SimState* state = nullptr;
  const EpochDecision* decision = nullptr;
  const DegradedNetwork* degraded = nullptr;  ///< null on pristine epochs
  const FaultInjector* injector = nullptr;    ///< null without a schedule
  int n = 0;                                  ///< SFC length
};

/// Per-run invariant checker. Attach to the engine's event stream (it is
/// an EpochObserver) and call `check_epoch` once per epoch after
/// `on_epoch_end`, then `check_run` on the finished trace.
class InvariantAuditor final : public EpochObserver {
 public:
  InvariantAuditor(AuditOptions options, std::string policy_name);

  // -- Event-stream sanity tracking (invariant "event-stream") ----------
  void on_run_begin(Hour horizon, const Placement& initial) override;
  void on_epoch_begin(Hour hour) override;
  void on_faults(Hour hour, const EpochFaults& events) override;
  void on_quarantine(Hour hour, int flows, double unserved_rate,
                     double penalty) override;
  void on_ladder_transition(Hour hour, DegradationRung from,
                            DegradationRung to,
                            const std::string& reason) override;
  void on_epoch_end(Hour hour, const EpochDecision& decision) override;

  /// Validates one fully costed epoch against the live engine state.
  /// Must be called after the epoch's on_epoch_end was delivered.
  void check_epoch(const AuditContext& ctx);

  /// Validates the finished trace: totals must equal the per-epoch sums
  /// (TraceRecorder conservation) and the stream must have closed.
  void check_run(const SimTrace& trace) const;

  int checked_epochs() const noexcept { return checked_epochs_; }

 private:
  [[noreturn]] void fail(Hour epoch, std::string invariant,
                         std::string detail,
                         FlowId flow = FlowId::invalid(),
                         NodeId node = kInvalidNode) const;

  void check_placement(const AuditContext& ctx, const Placement& p) const;
  void check_conservation(const AuditContext& ctx) const;
  void check_injector(const AuditContext& ctx) const;
  void check_stream(const AuditContext& ctx) const;

  AuditOptions options_;
  std::string policy_;
  int checked_epochs_ = 0;
  int transitions_seen_ = 0;

  // Stream state accumulated from the observer callbacks.
  Hour horizon_ = Hour::invalid();
  Hour open_epoch_ = Hour::invalid();   ///< begun but not yet ended
  Hour last_ended_ = Hour::invalid();
  bool epoch_ended_ = false;            ///< on_epoch_end seen for open epoch
  EpochDecision last_decision_;
  EpochFaults last_faults_;             ///< on_faults payload of open epoch
  bool saw_faults_event_ = false;
  int stream_quarantined_ = 0;          ///< on_quarantine payload
  double stream_penalty_ = 0.0;
  DegradationRung stream_rung_ = DegradationRung::kFull;  ///< from transitions
};

class ShardedCostModel;  // core/sharded_cost_model.hpp
class StreamingWorkload;  // workload/streaming.hpp

/// Everything the sharded auditor needs to re-derive one *shard's* epoch
/// truth (DESIGN.md §15). `model` is the model the shard's epoch was
/// costed on (the degraded model on faulty epochs); `flows` carry the
/// epoch's quarantine-adjusted rates.
struct ShardAuditContext {
  Hour epoch = Hour::invalid();
  int shard = -1;
  const std::string* name = nullptr;
  const CostModel* model = nullptr;
  const std::vector<VmFlow>* flows = nullptr;
  const Placement* placement = nullptr;
  double charged_comm = 0.0;  ///< the comm cost the merge charged this shard
  bool frozen = false;        ///< executed at kFrozen (stale charge, exempt)
  bool service_down = false;  ///< blackout epoch (nothing served)
  const DegradedNetwork* degraded = nullptr;
  int n = 0;
};

/// The epoch-global inputs of the sharded audit (after the merge).
struct ShardedAuditContext {
  Hour epoch = Hour::invalid();
  const ShardedCostModel* shards = nullptr;
  const std::vector<VmFlow>* global_flows = nullptr;  ///< base-rate vector
  const EpochDecision* decision = nullptr;
  const DegradedNetwork* degraded = nullptr;
  const FaultInjector* injector = nullptr;
};

/// Per-run invariant checker of the sharded streaming engine
/// (sim/sharded.hpp). Reasons per shard where the monolithic auditor
/// reasons per run: placement feasibility on each shard's degraded core,
/// per-shard comm-cost conservation against from-scratch flow_cost sums
/// (including the exactly-patched costs of held shards), global↔local
/// id-map consistency in ShardedCostModel, and the merged event stream
/// with its per-shard ladder. Attach to the engine's event stream, call
/// check_shard_epoch once per shard (fixed shard order) after
/// on_epoch_end, then check_epoch for the merged decision, and check_run
/// on the finished trace. Violations throw AuditError naming the shard.
class ShardedInvariantAuditor final : public EpochObserver {
 public:
  ShardedInvariantAuditor(AuditOptions options, std::string policy_name,
                          std::vector<std::string> shard_names);

  // -- Event-stream sanity tracking (invariant "event-stream") ----------
  void on_run_begin(Hour horizon, const Placement& initial) override;
  void on_epoch_begin(Hour hour) override;
  void on_faults(Hour hour, const EpochFaults& events) override;
  void on_quarantine(Hour hour, int flows, double unserved_rate,
                     double penalty) override;
  void on_shard_ladder_transition(Hour hour, int shard,
                                  const std::string& name,
                                  DegradationRung from, DegradationRung to,
                                  const std::string& reason) override;
  void on_epoch_end(Hour hour, const EpochDecision& decision) override;

  /// Epoch-journal resume support: the first `epochs` epochs of the trace
  /// were replayed from the journal (with `transitions` ladder steps and
  /// the given per-shard rungs), not observed live. check_run accounts
  /// for them; the stream checks start at the first live epoch.
  void note_resumed(int epochs, int transitions,
                    const std::vector<DegradationRung>& rungs);

  /// Validates one shard's fully costed epoch. Call in fixed shard order
  /// after the epoch's on_epoch_end, before check_epoch.
  void check_shard_epoch(const ShardAuditContext& ctx);

  /// Validates the merged epoch: injector consistency, id-map
  /// consistency, and the merged comm cost against the per-shard charges
  /// accumulated by check_shard_epoch.
  void check_epoch(const ShardedAuditContext& ctx);

  /// Validates the finished trace (TraceRecorder conservation, stream
  /// closure, per-shard counter sums).
  void check_run(const SimTrace& trace) const;

  int checked_epochs() const noexcept { return checked_epochs_; }

 private:
  [[noreturn]] void fail(Hour epoch, std::string invariant,
                         std::string detail, int shard = -1,
                         FlowId flow = FlowId::invalid(),
                         NodeId node = kInvalidNode) const;

  void check_shard_placement(const ShardAuditContext& ctx,
                             const Placement& p) const;
  void check_shard_conservation(const ShardAuditContext& ctx) const;
  void check_idmap(const ShardedAuditContext& ctx) const;
  void check_injector(const ShardedAuditContext& ctx) const;

  AuditOptions options_;
  std::string policy_;
  std::vector<std::string> shard_names_;
  int checked_epochs_ = 0;
  int transitions_seen_ = 0;
  int replayed_epochs_ = 0;

  // Stream state accumulated from the observer callbacks.
  Hour horizon_ = Hour::invalid();
  Hour open_epoch_ = Hour::invalid();
  Hour last_ended_ = Hour::invalid();
  bool epoch_ended_ = false;
  EpochFaults last_faults_;
  bool saw_faults_event_ = false;
  int stream_quarantined_ = 0;
  double stream_penalty_ = 0.0;
  std::vector<DegradationRung> shard_rungs_;  ///< from per-shard transitions

  // Per-epoch accumulation from check_shard_epoch (reset by
  // on_epoch_begin; compared by check_epoch).
  double epoch_comm_sum_ = 0.0;  ///< Σ charged_comm, fixed shard order
  int shards_checked_ = 0;
};

}  // namespace ppdc
