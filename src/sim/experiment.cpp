#include "sim/experiment.hpp"

#include "util/require.hpp"
#include "util/rng.hpp"

namespace ppdc {

std::vector<PolicyStats> run_experiment(
    const Topology& topo, const AllPairs& apsp, const ExperimentConfig& config,
    const std::vector<MigrationPolicy*>& policies) {
  PPDC_REQUIRE(config.trials >= 1, "need at least one trial");
  PPDC_REQUIRE(!policies.empty(), "need at least one policy");

  const std::size_t num_policies = policies.size();
  const std::size_t hours = static_cast<std::size_t>(config.sim.hours);

  std::vector<RunningStats> total(num_policies), comm(num_policies),
      migration(num_policies), vnf_moves(num_policies),
      vm_moves(num_policies), recovery_moves(num_policies),
      recovery(num_policies), quarantined(num_policies),
      penalty(num_policies), downtime(num_policies);
  std::vector<std::vector<RunningStats>> hourly_cost(
      num_policies, std::vector<RunningStats>(hours));
  std::vector<std::vector<RunningStats>> hourly_moves(
      num_policies, std::vector<RunningStats>(hours));

  Rng seeder(config.seed);
  for (int trial = 0; trial < config.trials; ++trial) {
    Rng trial_rng = seeder.split();
    const std::vector<VmFlow> flows =
        generate_vm_flows(topo, config.workload, trial_rng);
    for (std::size_t pi = 0; pi < num_policies; ++pi) {
      const SimTrace trace = run_simulation(apsp, flows, config.sfc_length,
                                            config.sim, *policies[pi]);
      total[pi].add(trace.total_cost);
      comm[pi].add(trace.total_comm_cost);
      migration[pi].add(trace.total_migration_cost);
      vnf_moves[pi].add(static_cast<double>(trace.total_vnf_migrations));
      vm_moves[pi].add(static_cast<double>(trace.total_vm_migrations));
      recovery_moves[pi].add(
          static_cast<double>(trace.total_recovery_migrations));
      recovery[pi].add(trace.total_recovery_cost);
      quarantined[pi].add(static_cast<double>(trace.quarantined_flow_epochs));
      penalty[pi].add(trace.total_quarantine_penalty);
      downtime[pi].add(static_cast<double>(trace.downtime_epochs));
      for (std::size_t h = 0; h < hours && h < trace.epochs.size(); ++h) {
        const EpochDecision& d = trace.epochs[h];
        hourly_cost[pi][h].add(d.comm_cost + d.migration_cost);
        hourly_moves[pi][h].add(
            static_cast<double>(d.vnf_migrations + d.vm_migrations));
      }
    }
  }

  std::vector<PolicyStats> stats;
  stats.reserve(num_policies);
  for (std::size_t pi = 0; pi < num_policies; ++pi) {
    PolicyStats s;
    s.name = policies[pi]->name();
    s.total_cost = {total[pi].mean(), total[pi].ci95_halfwidth()};
    s.comm_cost = {comm[pi].mean(), comm[pi].ci95_halfwidth()};
    s.migration_cost = {migration[pi].mean(), migration[pi].ci95_halfwidth()};
    s.vnf_migrations = {vnf_moves[pi].mean(), vnf_moves[pi].ci95_halfwidth()};
    s.vm_migrations = {vm_moves[pi].mean(), vm_moves[pi].ci95_halfwidth()};
    s.recovery_migrations = {recovery_moves[pi].mean(),
                             recovery_moves[pi].ci95_halfwidth()};
    s.recovery_cost = {recovery[pi].mean(), recovery[pi].ci95_halfwidth()};
    s.quarantined_flow_epochs = {quarantined[pi].mean(),
                                 quarantined[pi].ci95_halfwidth()};
    s.quarantine_penalty = {penalty[pi].mean(), penalty[pi].ci95_halfwidth()};
    s.downtime_epochs = {downtime[pi].mean(), downtime[pi].ci95_halfwidth()};
    for (std::size_t h = 0; h < hours; ++h) {
      s.hourly_cost.push_back(
          {hourly_cost[pi][h].mean(), hourly_cost[pi][h].ci95_halfwidth()});
      s.hourly_migrations.push_back(
          {hourly_moves[pi][h].mean(), hourly_moves[pi][h].ci95_halfwidth()});
    }
    stats.push_back(std::move(s));
  }
  return stats;
}

}  // namespace ppdc
