#include "sim/experiment.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace ppdc {

namespace {

/// One simulation run's samples, and the per-policy accumulator: every
/// field is a RunningStats so a job result and the reduction target are
/// the same type, merged with RunningStats::merge. The reduction order is
/// fixed (trial-major, below), never a function of worker interleaving —
/// that alone makes every thread count bit-identical. On top of that,
/// merging a single-sample bundle runs Welford's add() arithmetic on the
/// mean (Chan's update degenerates for nb = 1), so reported means also
/// match the historical serial loop bit for bit (see stats_test.cpp).
struct StatsBundle {
  RunningStats total, comm, migration, vnf_moves, vm_moves, recovery_moves,
      recovery_cost, quarantined, penalty, downtime, truncated;
  std::vector<RunningStats> hourly_cost, hourly_moves;

  explicit StatsBundle(std::size_t hours)
      : hourly_cost(hours), hourly_moves(hours) {}

  void add(const SimTrace& trace) {
    total.add(trace.total_cost);
    comm.add(trace.total_comm_cost);
    migration.add(trace.total_migration_cost);
    vnf_moves.add(static_cast<double>(trace.total_vnf_migrations));
    vm_moves.add(static_cast<double>(trace.total_vm_migrations));
    recovery_moves.add(static_cast<double>(trace.total_recovery_migrations));
    recovery_cost.add(trace.total_recovery_cost);
    quarantined.add(static_cast<double>(trace.quarantined_flow_epochs));
    penalty.add(trace.total_quarantine_penalty);
    downtime.add(static_cast<double>(trace.downtime_epochs));
    truncated.add(static_cast<double>(trace.total_truncated_solves));
    for (std::size_t h = 0; h < hourly_cost.size(); ++h) {
      const EpochDecision& d = trace.epochs[h];
      hourly_cost[h].add(d.comm_cost + d.migration_cost);
      hourly_moves[h].add(
          static_cast<double>(d.vnf_migrations + d.vm_migrations));
    }
  }

  void merge(const StatsBundle& other) {
    total.merge(other.total);
    comm.merge(other.comm);
    migration.merge(other.migration);
    vnf_moves.merge(other.vnf_moves);
    vm_moves.merge(other.vm_moves);
    recovery_moves.merge(other.recovery_moves);
    recovery_cost.merge(other.recovery_cost);
    quarantined.merge(other.quarantined);
    penalty.merge(other.penalty);
    downtime.merge(other.downtime);
    truncated.merge(other.truncated);
    for (std::size_t h = 0; h < hourly_cost.size(); ++h) {
      hourly_cost[h].merge(other.hourly_cost[h]);
      hourly_moves[h].merge(other.hourly_moves[h]);
    }
  }
};

MeanCi mean_ci_of(const RunningStats& s) {
  return MeanCi{s.mean(), s.ci95_halfwidth()};
}

}  // namespace

int resolve_experiment_threads(int requested) {
  if (requested >= 1) return requested;
#if defined(PPDC_TSAN)
  return 1;
#else
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
#endif
}

std::vector<PolicyStats> run_experiment(
    const Topology& topo, const AllPairs& apsp, const ExperimentConfig& config,
    const std::vector<const MigrationPolicy*>& policies) {
  PPDC_REQUIRE(config.trials >= 1, "need at least one trial");
  PPDC_REQUIRE(!policies.empty(), "need at least one policy");
  for (const MigrationPolicy* p : policies) {
    PPDC_REQUIRE(p != nullptr, "null policy prototype");
  }

  const std::size_t num_policies = policies.size();
  const std::size_t num_trials = static_cast<std::size_t>(config.trials);
  const std::size_t hours = static_cast<std::size_t>(config.sim.hours);

  // Pre-split the per-trial RNG streams and regenerate each trial's
  // workload before dispatch — same seeder order as the serial runner, so
  // trial t sees the same flows regardless of how jobs are scheduled.
  std::vector<std::vector<VmFlow>> trial_flows;
  trial_flows.reserve(num_trials);
  {
    Rng seeder(config.seed);
    for (std::size_t trial = 0; trial < num_trials; ++trial) {
      Rng trial_rng = seeder.split();
      trial_flows.push_back(generate_vm_flows(topo, config.workload,
                                              trial_rng));
    }
  }

  // The (trial, policy) grid as independent jobs, trial-major so the
  // reduction below walks trials in order for each policy.
  struct SimJob {
    std::size_t trial;
    std::size_t policy;
  };
  std::vector<SimJob> jobs;
  jobs.reserve(num_trials * num_policies);
  for (std::size_t trial = 0; trial < num_trials; ++trial) {
    for (std::size_t pi = 0; pi < num_policies; ++pi) {
      jobs.push_back(SimJob{trial, pi});
    }
  }

  std::vector<StatsBundle> samples(jobs.size(), StatsBundle(hours));
  std::vector<std::exception_ptr> errors(jobs.size());

  std::atomic<std::size_t> next{0};
  auto worker = [&]() noexcept {
    for (;;) {
      const std::size_t j = next.fetch_add(1, std::memory_order_relaxed);
      if (j >= jobs.size()) return;
      try {
        const SimJob& job = jobs[j];
        // Every job owns an isolated policy instance: stateful policies
        // start each trial fresh and never race across threads.
        const std::unique_ptr<MigrationPolicy> policy =
            policies[job.policy]->clone();
        PPDC_REQUIRE(policy != nullptr,
                     "policy '" + policies[job.policy]->name() +
                         "' returned a null clone()");
        const SimTrace trace =
            run_simulation(apsp, trial_flows[job.trial], config.sfc_length,
                           config.sim, *policy);
        PPDC_REQUIRE(trace.epochs.size() == hours,
                     "policy '" + policies[job.policy]->name() + "' trial " +
                         std::to_string(job.trial) + " produced " +
                         std::to_string(trace.epochs.size()) +
                         " epochs for a " + std::to_string(hours) +
                         "-hour horizon");
        samples[j].add(trace);
      } catch (...) {
        errors[j] = std::current_exception();
      }
    }
  };

  const int want = resolve_experiment_threads(config.threads);
  const std::size_t pool = std::min<std::size_t>(
      static_cast<std::size_t>(want), jobs.size());
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  // Deterministic error surfacing: the first failing job in grid order
  // wins, independent of which thread hit it first.
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Deterministic reduction: per policy, merge single-trial bundles in
  // trial order (the jobs vector is trial-major).
  std::vector<StatsBundle> acc(num_policies, StatsBundle(hours));
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    acc[jobs[j].policy].merge(samples[j]);
  }

  std::vector<PolicyStats> stats;
  stats.reserve(num_policies);
  for (std::size_t pi = 0; pi < num_policies; ++pi) {
    const StatsBundle& b = acc[pi];
    PolicyStats s;
    s.name = policies[pi]->name();
    s.total_cost = mean_ci_of(b.total);
    s.comm_cost = mean_ci_of(b.comm);
    s.migration_cost = mean_ci_of(b.migration);
    s.vnf_migrations = mean_ci_of(b.vnf_moves);
    s.vm_migrations = mean_ci_of(b.vm_moves);
    s.recovery_migrations = mean_ci_of(b.recovery_moves);
    s.recovery_cost = mean_ci_of(b.recovery_cost);
    s.quarantined_flow_epochs = mean_ci_of(b.quarantined);
    s.quarantine_penalty = mean_ci_of(b.penalty);
    s.downtime_epochs = mean_ci_of(b.downtime);
    s.truncated_solves = mean_ci_of(b.truncated);
    s.hourly_cost.reserve(hours);
    s.hourly_migrations.reserve(hours);
    for (std::size_t h = 0; h < hours; ++h) {
      s.hourly_cost.push_back(mean_ci_of(b.hourly_cost[h]));
      s.hourly_migrations.push_back(mean_ci_of(b.hourly_moves[h]));
    }
    stats.push_back(std::move(s));
  }
  return stats;
}

}  // namespace ppdc
