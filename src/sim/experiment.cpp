#include "sim/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "core/sharded_cost_model.hpp"
#include "graph/apsp.hpp"
#include "sim/checkpoint.hpp"
#include "sim/observer.hpp"
#include "sim/policy.hpp"
#include "util/checksum.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "workload/streaming.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

void StatsBundle::add(const SimTrace& trace) {
  total.add(trace.total_cost);
  comm.add(trace.total_comm_cost);
  migration.add(trace.total_migration_cost);
  vnf_moves.add(static_cast<double>(trace.total_vnf_migrations));
  vm_moves.add(static_cast<double>(trace.total_vm_migrations));
  recovery_moves.add(static_cast<double>(trace.total_recovery_migrations));
  recovery_cost.add(trace.total_recovery_cost);
  quarantined.add(static_cast<double>(trace.quarantined_flow_epochs));
  penalty.add(trace.total_quarantine_penalty);
  downtime.add(static_cast<double>(trace.downtime_epochs));
  truncated.add(static_cast<double>(trace.total_truncated_solves));
  ladder_transitions.add(static_cast<double>(trace.ladder_transitions));
  refresh_only.add(static_cast<double>(trace.refresh_only_epochs));
  frozen.add(static_cast<double>(trace.frozen_epochs));
  policy_failures.add(static_cast<double>(trace.policy_failures));
  shard_resolves.add(static_cast<double>(trace.total_shard_resolves));
  shard_holds.add(static_cast<double>(trace.total_shard_holds));
  shard_quarantines.add(static_cast<double>(trace.quarantined_shard_epochs));
  shard_retries.add(static_cast<double>(trace.total_shard_retries));
  shard_penalty.add(trace.total_shard_penalty);
  for (std::size_t h = 0; h < hourly_cost.size(); ++h) {
    const EpochDecision& d = trace.epochs[h];
    hourly_cost[h].add(d.comm_cost + d.migration_cost);
    hourly_moves[h].add(
        static_cast<double>(d.vnf_migrations + d.vm_migrations));
  }
}

void StatsBundle::merge(const StatsBundle& other) {
  total.merge(other.total);
  comm.merge(other.comm);
  migration.merge(other.migration);
  vnf_moves.merge(other.vnf_moves);
  vm_moves.merge(other.vm_moves);
  recovery_moves.merge(other.recovery_moves);
  recovery_cost.merge(other.recovery_cost);
  quarantined.merge(other.quarantined);
  penalty.merge(other.penalty);
  downtime.merge(other.downtime);
  truncated.merge(other.truncated);
  ladder_transitions.merge(other.ladder_transitions);
  refresh_only.merge(other.refresh_only);
  frozen.merge(other.frozen);
  policy_failures.merge(other.policy_failures);
  shard_resolves.merge(other.shard_resolves);
  shard_holds.merge(other.shard_holds);
  shard_quarantines.merge(other.shard_quarantines);
  shard_retries.merge(other.shard_retries);
  shard_penalty.merge(other.shard_penalty);
  for (std::size_t h = 0; h < hourly_cost.size(); ++h) {
    hourly_cost[h].merge(other.hourly_cost[h]);
    hourly_moves[h].merge(other.hourly_moves[h]);
  }
}

namespace {

MeanCi mean_ci_of(const RunningStats& s) {
  return MeanCi{s.mean(), s.ci95_halfwidth()};
}

/// Per-attempt RNG stream for TransientError retries: attempt a >= 1 of
/// cell (trial, policy) derives its stream from a deterministic resplit of
/// the experiment seed, so a retried grid is reproducible end to end.
/// Attempt 0 never consumes this (bit-identity with the retry-free runner).
std::uint64_t attempt_seed(std::uint64_t seed, std::size_t trial,
                           std::size_t policy, int attempt) {
  return Hash64()
      .u64(seed)
      .u64(trial)
      .u64(policy)
      .u64(static_cast<std::uint64_t>(attempt))
      .value();
}

}  // namespace

int resolve_experiment_threads(int requested) {
  if (requested >= 1) return requested;
#if defined(PPDC_TSAN)
  return 1;
#else
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
#endif
}

std::vector<PolicyStats> run_experiment(
    const Topology& topo, const AllPairs& apsp, const ExperimentConfig& config,
    const std::vector<const MigrationPolicy*>& policies) {
  PPDC_REQUIRE(config.trials >= 1, "need at least one trial");
  PPDC_REQUIRE(!policies.empty(), "need at least one policy");
  PPDC_REQUIRE(config.retry_limit >= 0, "negative retry limit");
  for (const MigrationPolicy* p : policies) {
    PPDC_REQUIRE(p != nullptr, "null policy prototype");
  }

  const std::size_t num_policies = policies.size();
  const std::size_t num_trials = static_cast<std::size_t>(config.trials);
  const std::size_t hours = static_cast<std::size_t>(config.sim.hours);
  const std::atomic<bool>* cancel = config.sim.cancel;

  // Pre-split the per-trial RNG streams and regenerate each trial's
  // workload before dispatch — same seeder order as the serial runner, so
  // trial t sees the same flows regardless of how jobs are scheduled (and
  // regardless of which cells a resumed run skips). Sharded streaming
  // jobs instead keep a copy of the trial stream: every (trial, policy)
  // job regenerates its own StreamingWorkload from that copy, so all
  // policies of a trial see the identical initial draw *and* churn trace
  // (the streaming analogue of the shared trial_flows vector).
  std::vector<std::vector<VmFlow>> trial_flows;
  std::vector<Rng> trial_rngs;
  {
    Rng seeder(config.seed);
    for (std::size_t trial = 0; trial < num_trials; ++trial) {
      Rng trial_rng = seeder.split();
      if (config.sharded.enabled) {
        trial_rngs.push_back(trial_rng);
      } else {
        trial_flows.push_back(generate_vm_flows(topo, config.workload,
                                                trial_rng));
      }
    }
  }
  std::optional<ShardMap> shard_map;
  if (config.sharded.enabled) {
    shard_map.emplace(ShardMap::by_ingress_pod(topo));
  }

  // The terminal record of every (trial, policy) cell, trial-major. Cells
  // recovered from the journal are filled before dispatch; the workers
  // fill the rest. Their provenance does not matter for the reduction —
  // a journaled bundle carries the same raw IEEE bits a fresh run would.
  std::vector<std::optional<JobRecord>> cells(num_trials * num_policies);

  std::unique_ptr<CheckpointJournal> journal;
  if (!config.checkpoint_path.empty()) {
    const ExperimentFingerprint fingerprint =
        fingerprint_experiment(topo, config, policies);
    const JournalDims dims{
        checked_cast<std::uint32_t>(config.trials, "experiment trials"),
        checked_cast<std::uint32_t>(num_policies, "experiment policies"),
        checked_cast<std::uint32_t>(config.sim.hours, "experiment hours")};
    journal = std::make_unique<CheckpointJournal>(config.checkpoint_path,
                                                  fingerprint, dims);
    if (!journal->load_warning().empty()) {
      std::cerr << "warning: " << journal->load_warning() << "\n";
    }
    std::size_t skipped = 0;
    for (const JobRecord& rec : journal->resumed()) {
      PPDC_REQUIRE(rec.policy_name == policies[rec.policy]->name(),
                   "journal record for cell (" + std::to_string(rec.trial) +
                       ", " + std::to_string(rec.policy) + ") names policy '" +
                       rec.policy_name + "' but the experiment runs '" +
                       policies[rec.policy]->name() +
                       "' at that index (corrupt journal?)");
      std::optional<JobRecord>& cell =
          cells[rec.trial * num_policies + rec.policy];
      // File order is append order: the latest record for a cell wins. A
      // journaled failure is rerun rather than resumed — deterministic
      // failures recur harmlessly, transient ones get a fresh chance.
      if (rec.outcome == JobOutcome::kFailed) {
        cell.reset();
      } else {
        cell = rec;
      }
    }
    for (const std::optional<JobRecord>& cell : cells) {
      if (cell.has_value()) ++skipped;
    }
    if (skipped > 0) {
      std::cerr << "note: resuming from checkpoint journal '"
                << journal->path() << "': " << skipped << " of "
                << cells.size() << " jobs already journaled\n";
    }
  }

  // The unfilled cells of the (trial, policy) grid as independent jobs,
  // trial-major so the reduction below walks trials in order per policy.
  struct SimJob {
    std::size_t trial;
    std::size_t policy;
  };
  std::vector<SimJob> jobs;
  jobs.reserve(cells.size());
  for (std::size_t trial = 0; trial < num_trials; ++trial) {
    for (std::size_t pi = 0; pi < num_policies; ++pi) {
      if (!cells[trial * num_policies + pi].has_value()) {
        jobs.push_back(SimJob{trial, pi});
      }
    }
  }

  // Per-job failure slots for deterministic surfacing under !keep_going
  // (first failing job in grid order wins, independent of thread timing).
  std::vector<std::exception_ptr> errors(jobs.size());

  std::atomic<std::size_t> next{0};
  auto worker = [&]() noexcept {
    for (;;) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        return;  // stop pulling; completed jobs are already journaled
      }
      const std::size_t j = next.fetch_add(1, std::memory_order_relaxed);
      if (j >= jobs.size()) return;
      const SimJob& job = jobs[j];

      JobRecord rec;
      rec.trial = static_cast<std::uint32_t>(job.trial);
      rec.policy = static_cast<std::uint32_t>(job.policy);
      rec.policy_name = policies[job.policy]->name();

      // Intra-cell epoch journal (DESIGN.md §15): one path per (trial,
      // policy) cell, derived from the configured base so concurrent
      // cells never clobber each other's journals.
      ShardedStreamingConfig cell_sharded = config.sharded;
      if (!cell_sharded.epoch_journal.empty()) {
        cell_sharded.epoch_journal += ".t" + std::to_string(job.trial) + "p" +
                                      std::to_string(job.policy);
      }

      bool interrupted = false;
      for (int attempt = 0;; ++attempt) {
        rec.attempts = static_cast<std::uint32_t>(attempt + 1);
        try {
          // Every attempt owns an isolated policy instance: stateful
          // policies start each trial fresh and never race across threads,
          // and a retry never sees half-updated state of the failed run.
          const std::unique_ptr<MigrationPolicy> policy =
              policies[job.policy]->clone();
          PPDC_REQUIRE(policy != nullptr,
                       "policy '" + policies[job.policy]->name() +
                           "' returned a null clone()");
          if (attempt > 0) {
            Rng attempt_rng(
                attempt_seed(config.seed, job.trial, job.policy, attempt));
            policy->reseed(attempt_rng);
            // A retry must never resume the failed attempt's state: the
            // reseeded policy clone would diverge from the journaled
            // trajectory (the fingerprint does not cover attempt seeds).
            remove_epoch_journal(cell_sharded.epoch_journal);
          }
          SimTrace trace;
          if (config.sharded.enabled) {
            StreamingWorkload streaming(topo, config.workload,
                                        config.sharded.churn,
                                        trial_rngs[job.trial]);
            trace = run_sharded_simulation(apsp, *shard_map, streaming,
                                           config.sfc_length, config.sim,
                                           cell_sharded, *policy);
          } else {
            trace = run_simulation(apsp, trial_flows[job.trial],
                                   config.sfc_length, config.sim, *policy);
          }
          PPDC_REQUIRE(trace.epochs.size() == hours,
                       "policy '" + policies[job.policy]->name() + "' trial " +
                           std::to_string(job.trial) + " produced " +
                           std::to_string(trace.epochs.size()) +
                           " epochs for a " + std::to_string(hours) +
                           "-hour horizon");
          rec.stats = StatsBundle(hours);
          rec.stats.add(trace);
          rec.outcome = trace.total_truncated_solves > 0
                            ? JobOutcome::kTruncated
                            : JobOutcome::kOk;
          rec.error.clear();
          break;
        } catch (const SimInterrupted&) {
          // Cancelled mid-run: the job never happened. It is not journaled
          // and not recorded, so a resumed campaign reruns it from epoch 0
          // — the only way the resumed bundle stays bit-identical.
          interrupted = true;
          break;
        } catch (const TransientError& e) {
          if (attempt < config.retry_limit) continue;
          rec.outcome = JobOutcome::kFailed;
          rec.error = e.what();
          errors[j] = std::current_exception();
          break;
        } catch (const std::exception& e) {
          rec.outcome = JobOutcome::kFailed;
          rec.error = e.what();
          errors[j] = std::current_exception();
          break;
        } catch (...) {
          rec.outcome = JobOutcome::kFailed;
          rec.error = "unknown exception";
          errors[j] = std::current_exception();
          break;
        }
      }
      if (interrupted) return;

      if (journal) {
        try {
          journal->append(rec);
        } catch (...) {
          // Journal I/O failure must not silently downgrade durability:
          // surface it like a job failure (first-in-grid-order wins).
          if (!errors[j]) errors[j] = std::current_exception();
        }
      }
      // The cell reached a terminal record, so its intra-cell epoch
      // journal is spent (a cancelled job keeps its journal — that is
      // the mid-run resume path).
      remove_epoch_journal(cell_sharded.epoch_journal);
      cells[job.trial * num_policies + job.policy] = std::move(rec);
    }
  };

  const int want = resolve_experiment_threads(config.threads);
  const std::size_t pool = std::min<std::size_t>(
      static_cast<std::size_t>(want), std::max<std::size_t>(jobs.size(), 1));
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    // Cooperative stop (SIGINT/SIGTERM via bench_common): report what is
    // already known — and, when a journal is configured, already durable.
    std::ostringstream summary;
    for (std::size_t pi = 0; pi < num_policies; ++pi) {
      std::size_t done = 0;
      for (std::size_t trial = 0; trial < num_trials; ++trial) {
        const std::optional<JobRecord>& cell =
            cells[trial * num_policies + pi];
        if (cell.has_value() && cell->outcome != JobOutcome::kFailed) ++done;
      }
      summary << "  " << policies[pi]->name() << ": " << done << "/"
              << num_trials << " trials completed\n";
    }
    std::string what = "experiment cancelled mid-grid";
    what += journal ? "; completed jobs are durable in '" + journal->path() +
                          "' and will be skipped on resume"
                    : "; no checkpoint journal configured — completed work "
                      "is lost";
    throw ExperimentInterrupted(what, std::move(summary).str());
  }

  if (!config.keep_going) {
    // Deterministic error surfacing: the first failing job in grid order
    // wins, independent of which thread hit it first.
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Deterministic reduction: per policy, merge single-trial bundles in
  // trial order (the cells vector is trial-major). Journaled and freshly
  // run cells are indistinguishable here — that is the resume contract.
  std::vector<StatsBundle> acc(num_policies, StatsBundle(hours));
  std::vector<std::vector<JobFailure>> failures(num_policies);
  for (std::size_t trial = 0; trial < num_trials; ++trial) {
    for (std::size_t pi = 0; pi < num_policies; ++pi) {
      const std::optional<JobRecord>& cell = cells[trial * num_policies + pi];
      PPDC_REQUIRE(cell.has_value(),
                   "cell (" + std::to_string(trial) + ", " +
                       std::to_string(pi) + ") has no terminal record");
      if (cell->outcome == JobOutcome::kFailed) {
        failures[pi].push_back(JobFailure{static_cast<int>(trial),
                                          static_cast<int>(cell->attempts),
                                          cell->error});
      } else {
        acc[pi].merge(cell->stats);
      }
    }
  }

  std::vector<PolicyStats> stats;
  stats.reserve(num_policies);
  for (std::size_t pi = 0; pi < num_policies; ++pi) {
    const StatsBundle& b = acc[pi];
    PolicyStats s;
    s.name = policies[pi]->name();
    s.total_cost = mean_ci_of(b.total);
    s.comm_cost = mean_ci_of(b.comm);
    s.migration_cost = mean_ci_of(b.migration);
    s.vnf_migrations = mean_ci_of(b.vnf_moves);
    s.vm_migrations = mean_ci_of(b.vm_moves);
    s.recovery_migrations = mean_ci_of(b.recovery_moves);
    s.recovery_cost = mean_ci_of(b.recovery_cost);
    s.quarantined_flow_epochs = mean_ci_of(b.quarantined);
    s.quarantine_penalty = mean_ci_of(b.penalty);
    s.downtime_epochs = mean_ci_of(b.downtime);
    s.truncated_solves = mean_ci_of(b.truncated);
    s.ladder_transitions = mean_ci_of(b.ladder_transitions);
    s.refresh_only_epochs = mean_ci_of(b.refresh_only);
    s.frozen_epochs = mean_ci_of(b.frozen);
    s.policy_failures = mean_ci_of(b.policy_failures);
    s.shard_resolves = mean_ci_of(b.shard_resolves);
    s.shard_holds = mean_ci_of(b.shard_holds);
    s.quarantined_shard_epochs = mean_ci_of(b.shard_quarantines);
    s.shard_retries = mean_ci_of(b.shard_retries);
    s.shard_penalty = mean_ci_of(b.shard_penalty);
    s.hourly_cost.reserve(hours);
    s.hourly_migrations.reserve(hours);
    for (std::size_t h = 0; h < hours; ++h) {
      s.hourly_cost.push_back(mean_ci_of(b.hourly_cost[h]));
      s.hourly_migrations.push_back(mean_ci_of(b.hourly_moves[h]));
    }
    s.completed_trials = static_cast<int>(b.total.count());
    s.failures = std::move(failures[pi]);
    stats.push_back(std::move(s));
  }
  return stats;
}

}  // namespace ppdc
