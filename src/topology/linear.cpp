#include "topology/linear.hpp"

#include <string>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

Topology build_linear(int num_switches) {
  PPDC_REQUIRE(num_switches >= 1, "linear PPDC needs at least one switch");
  Topology t;
  t.name = "linear-" + std::to_string(num_switches);
  Graph& g = t.graph;

  std::vector<NodeId> sw;
  sw.reserve(static_cast<std::size_t>(num_switches));
  for (int i = 0; i < num_switches; ++i) {
    sw.push_back(g.add_node(NodeKind::kSwitch, "s" + std::to_string(i + 1)));
  }
  for (int i = 0; i + 1 < num_switches; ++i) {
    g.add_edge(sw[static_cast<std::size_t>(i)],
               sw[static_cast<std::size_t>(i + 1)]);
  }
  const NodeId h1 = g.add_node(NodeKind::kHost, "h1");
  const NodeId h2 = g.add_node(NodeKind::kHost, "h2");
  g.add_edge(h1, sw.front());
  g.add_edge(h2, sw.back());

  t.racks.push_back({h1});
  t.racks.push_back({h2});
  t.rack_switches.push_back(sw.front());
  t.rack_switches.push_back(sw.back());
  return t;
}

}  // namespace ppdc
