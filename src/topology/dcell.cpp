#include "topology/dcell.hpp"

#include <string>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

Topology build_dcell1(int n) {
  PPDC_REQUIRE(n >= 2, "DCell needs n >= 2 servers per cell");

  Topology t;
  t.name = "dcell1-" + std::to_string(n);
  Graph& g = t.graph;

  const int cells = n + 1;
  std::vector<std::vector<NodeId>> cell_hosts(
      static_cast<std::size_t>(cells));
  for (int c = 0; c < cells; ++c) {
    const NodeId sw =
        g.add_node(NodeKind::kSwitch, "mini" + std::to_string(c));
    std::vector<NodeId> rack;
    for (int s = 0; s < n; ++s) {
      const NodeId host = g.add_node(
          NodeKind::kHost, "srv" + std::to_string(c) + "_" + std::to_string(s));
      g.add_edge(sw, host);
      rack.push_back(host);
    }
    cell_hosts[static_cast<std::size_t>(c)] = rack;
    t.racks.push_back(std::move(rack));
    t.rack_switches.push_back(sw);
  }

  // Inter-cell server links: server j-1 of cell i <-> server i of cell j.
  for (int i = 0; i < cells; ++i) {
    for (int j = i + 1; j < cells; ++j) {
      g.add_edge(cell_hosts[static_cast<std::size_t>(i)]
                           [static_cast<std::size_t>(j - 1)],
                 cell_hosts[static_cast<std::size_t>(j)]
                           [static_cast<std::size_t>(i)]);
    }
  }

  PPDC_REQUIRE(t.num_hosts() == n * cells, "host count mismatch");
  PPDC_REQUIRE(t.num_switches() == cells, "switch count mismatch");
  return t;
}

}  // namespace ppdc
