// k-ary fat-tree builder (Al-Fares et al., SIGCOMM 2008).
//
// The paper evaluates on fat-tree PPDCs with k = 8 (128 hosts) and k = 16
// (1024 hosts) (§VI). A k-ary fat-tree has k pods; each pod has k/2 edge
// switches and k/2 aggregation switches; each edge switch connects k/2
// hosts; (k/2)^2 core switches connect the pods. Total: (k/2)^2 + k^2
// switches and k^3/4 hosts. All edges are built with weight 1 (hop metric);
// apply a weight model afterwards for the weighted experiments (Fig. 10).
#pragma once

#include "topology/topology.hpp"

namespace ppdc {

/// Builds a k-ary fat-tree. `k` must be even and >= 2.
///
/// Node labels encode position, e.g. "core0_1", "agg2_0", "edge2_1",
/// "h2_1_0" (pod 2, edge switch 1, host 0). Racks are the per-edge-switch
/// host groups.
Topology build_fat_tree(int k);

/// Number of hosts in a k-ary fat-tree: k^3 / 4.
constexpr int fat_tree_num_hosts(int k) { return k * k * k / 4; }

/// Number of switches in a k-ary fat-tree: 5 k^2 / 4.
constexpr int fat_tree_num_switches(int k) { return 5 * k * k / 4; }

}  // namespace ppdc
