// Two-tier leaf-spine topology. The paper's problems and algorithms apply
// to any data center topology (§III footnote 2); leaf-spine is the common
// alternative to fat-trees and exercises the algorithms on a different
// distance structure in tests and examples.
#pragma once

#include "topology/topology.hpp"

namespace ppdc {

/// Builds a leaf-spine fabric: every leaf connects to every spine;
/// `hosts_per_leaf` hosts per leaf. Unit edge weights.
Topology build_leaf_spine(int num_leaves, int num_spines, int hosts_per_leaf);

}  // namespace ppdc
