#include "topology/vl2.hpp"

#include <string>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

Topology build_vl2(int num_intermediate, int num_aggregation, int num_tors,
                   int hosts_per_tor) {
  PPDC_REQUIRE(num_intermediate >= 1, "need at least one intermediate");
  PPDC_REQUIRE(num_aggregation >= 2, "VL2 needs at least two aggregations");
  PPDC_REQUIRE(num_tors >= 1, "need at least one ToR");
  PPDC_REQUIRE(hosts_per_tor >= 1, "need at least one host per ToR");

  Topology t;
  t.name = "vl2-" + std::to_string(num_intermediate) + "x" +
           std::to_string(num_aggregation) + "x" + std::to_string(num_tors);
  Graph& g = t.graph;

  std::vector<NodeId> inter, agg;
  for (int i = 0; i < num_intermediate; ++i) {
    inter.push_back(g.add_node(NodeKind::kSwitch, "int" + std::to_string(i)));
  }
  for (int a = 0; a < num_aggregation; ++a) {
    agg.push_back(g.add_node(NodeKind::kSwitch, "agg" + std::to_string(a)));
    for (const NodeId i : inter) {
      g.add_edge(agg.back(), i);
    }
  }
  for (int r = 0; r < num_tors; ++r) {
    const NodeId tor = g.add_node(NodeKind::kSwitch, "tor" + std::to_string(r));
    const std::size_t a1 = static_cast<std::size_t>(r % num_aggregation);
    const std::size_t a2 =
        static_cast<std::size_t>((r + 1) % num_aggregation);
    g.add_edge(tor, agg[a1]);
    if (a2 != a1) g.add_edge(tor, agg[a2]);
    std::vector<NodeId> rack;
    for (int h = 0; h < hosts_per_tor; ++h) {
      const NodeId host = g.add_node(
          NodeKind::kHost, "h" + std::to_string(r) + "_" + std::to_string(h));
      g.add_edge(tor, host);
      rack.push_back(host);
    }
    t.racks.push_back(std::move(rack));
    t.rack_switches.push_back(tor);
  }
  return t;
}

}  // namespace ppdc
