#include "topology/leaf_spine.hpp"

#include <string>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

Topology build_leaf_spine(int num_leaves, int num_spines, int hosts_per_leaf) {
  PPDC_REQUIRE(num_leaves >= 1, "need at least one leaf");
  PPDC_REQUIRE(num_spines >= 1, "need at least one spine");
  PPDC_REQUIRE(hosts_per_leaf >= 1, "need at least one host per leaf");
  Topology t;
  t.name = "leaf-spine-" + std::to_string(num_leaves) + "x" +
           std::to_string(num_spines);
  Graph& g = t.graph;

  std::vector<NodeId> spines;
  for (int s = 0; s < num_spines; ++s) {
    spines.push_back(g.add_node(NodeKind::kSwitch, "spine" + std::to_string(s)));
  }
  for (int lf = 0; lf < num_leaves; ++lf) {
    const NodeId leaf =
        g.add_node(NodeKind::kSwitch, "leaf" + std::to_string(lf));
    for (const NodeId spine : spines) g.add_edge(leaf, spine);
    std::vector<NodeId> rack;
    for (int h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host = g.add_node(
          NodeKind::kHost, "h" + std::to_string(lf) + "_" + std::to_string(h));
      g.add_edge(leaf, host);
      rack.push_back(host);
    }
    t.racks.push_back(std::move(rack));
    t.rack_switches.push_back(leaf);
  }
  return t;
}

}  // namespace ppdc
