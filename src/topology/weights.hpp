// Edge-weight models for PPDC experiments.
//
// The paper evaluates both unweighted PPDCs (hop counts) and weighted
// PPDCs where link delays are drawn uniformly with mean 1.5 ms and
// variance 0.5 ms, following the setup of Greedy/Liu [34] (§VI, Fig. 10).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace ppdc {

/// Resets every edge weight to 1 (hop metric).
void apply_unit_weights(Graph& g);

/// Assigns every edge an independent uniform delay with the given mean and
/// variance (uniform on [mean - half, mean + half] with half = sqrt(3*var)),
/// clamped to a small positive floor. Defaults follow [34]: mean 1.5,
/// variance 0.5.
void apply_uniform_delay_weights(Graph& g, std::uint64_t seed,
                                 double mean = 1.5, double variance = 0.5);

}  // namespace ppdc
