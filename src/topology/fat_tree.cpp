#include "topology/fat_tree.hpp"

#include <string>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

Topology build_fat_tree(int k) {
  PPDC_REQUIRE(k >= 2 && k % 2 == 0, "fat-tree arity k must be even and >= 2");
  const int half = k / 2;
  Topology t;
  t.name = "fat-tree-k" + std::to_string(k);
  Graph& g = t.graph;

  // Core layer: (k/2)^2 switches, indexed (i, j) with i, j in [0, k/2).
  std::vector<std::vector<NodeId>> core(
      static_cast<std::size_t>(half),
      std::vector<NodeId>(static_cast<std::size_t>(half)));
  for (int i = 0; i < half; ++i) {
    for (int j = 0; j < half; ++j) {
      core[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          g.add_node(NodeKind::kSwitch,
                     "core" + std::to_string(i) + "_" + std::to_string(j));
    }
  }

  for (int pod = 0; pod < k; ++pod) {
    std::vector<NodeId> agg(static_cast<std::size_t>(half));
    std::vector<NodeId> edge(static_cast<std::size_t>(half));
    for (int a = 0; a < half; ++a) {
      agg[static_cast<std::size_t>(a)] = g.add_node(
          NodeKind::kSwitch,
          "agg" + std::to_string(pod) + "_" + std::to_string(a));
    }
    for (int e = 0; e < half; ++e) {
      edge[static_cast<std::size_t>(e)] = g.add_node(
          NodeKind::kSwitch,
          "edge" + std::to_string(pod) + "_" + std::to_string(e));
    }
    // Pod mesh: every edge switch connects to every aggregation switch.
    for (int a = 0; a < half; ++a) {
      for (int e = 0; e < half; ++e) {
        g.add_edge(agg[static_cast<std::size_t>(a)],
                   edge[static_cast<std::size_t>(e)]);
      }
    }
    // Aggregation switch a of every pod connects to core row a.
    for (int a = 0; a < half; ++a) {
      for (int j = 0; j < half; ++j) {
        g.add_edge(agg[static_cast<std::size_t>(a)],
                   core[static_cast<std::size_t>(a)][static_cast<std::size_t>(j)]);
      }
    }
    // Hosts: k/2 per edge switch; each edge switch is a rack.
    for (int e = 0; e < half; ++e) {
      std::vector<NodeId> rack;
      rack.reserve(static_cast<std::size_t>(half));
      for (int h = 0; h < half; ++h) {
        const NodeId host = g.add_node(
            NodeKind::kHost, "h" + std::to_string(pod) + "_" +
                                 std::to_string(e) + "_" + std::to_string(h));
        g.add_edge(edge[static_cast<std::size_t>(e)], host);
        rack.push_back(host);
      }
      t.racks.push_back(std::move(rack));
      t.rack_switches.push_back(edge[static_cast<std::size_t>(e)]);
    }

    // The pod's switches share a power feed: one correlated failure
    // domain of its aggregation + edge layer. Core switches are fed
    // redundantly and belong to no domain.
    PowerDomain domain;
    domain.name = "pod" + std::to_string(pod);
    domain.switches = agg;
    domain.switches.insert(domain.switches.end(), edge.begin(), edge.end());
    t.power_domains.push_back(std::move(domain));
  }

  PPDC_REQUIRE(t.num_hosts() == fat_tree_num_hosts(k), "host count mismatch");
  PPDC_REQUIRE(t.num_switches() == fat_tree_num_switches(k),
               "switch count mismatch");
  return t;
}

}  // namespace ppdc
