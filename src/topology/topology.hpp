// Common result type for data-center topology builders.
//
// A Topology owns the PPDC graph plus structural metadata the workload
// generator needs: which hosts hang off which edge (top-of-rack) switch, so
// that the paper's "80% of VM pairs stay within the rack" placement rule
// (§VI, [8]) can be honoured on any topology.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ppdc {

/// A built data-center network.
struct Topology {
  Graph graph;
  std::string name;

  /// racks[r] lists the hosts attached to top-of-rack switch rack_switch[r].
  std::vector<std::vector<NodeId>> racks;
  std::vector<NodeId> rack_switches;

  NodeId num_hosts() const noexcept {
    return static_cast<NodeId>(graph.hosts().size());
  }
  NodeId num_switches() const noexcept {
    return static_cast<NodeId>(graph.switches().size());
  }
};

}  // namespace ppdc
