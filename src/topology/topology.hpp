// Common result type for data-center topology builders.
//
// A Topology owns the PPDC graph plus structural metadata the workload
// generator needs: which hosts hang off which edge (top-of-rack) switch, so
// that the paper's "80% of VM pairs stay within the rack" placement rule
// (§VI, [8]) can be honoured on any topology.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/indexed_vector.hpp"

namespace ppdc {

/// A correlated failure unit: switches that share a power feed (and a
/// maintenance schedule) and therefore fail and return together. Fat
/// trees get one domain per pod (its aggregation + edge switches); the
/// core layer, fed redundantly, belongs to no domain. The fault
/// generator (fault/fault.hpp) uses domains to draw pod-outage,
/// cascade, and maintenance-drain events.
struct PowerDomain {
  std::string name;
  std::vector<NodeId> switches;  ///< ascending NodeId order
};

/// A built data-center network.
struct Topology {
  Graph graph;
  std::string name;

  /// racks[r] lists the hosts attached to top-of-rack switch
  /// rack_switches[r]; both sides are subscripted by the same RackIdx.
  IndexedVector<RackIdx, std::vector<NodeId>> racks;
  IndexedVector<RackIdx, NodeId> rack_switches;

  /// Correlated failure units (may be empty: a topology without domain
  /// metadata only supports the independent fault processes).
  std::vector<PowerDomain> power_domains;

  NodeId num_hosts() const {
    return checked_cast<NodeId>(graph.hosts().size(), "host count");
  }
  NodeId num_switches() const {
    return checked_cast<NodeId>(graph.switches().size(), "switch count");
  }
  RackIdx num_racks() const {
    return checked_cast_id<RackIdx>(racks.size(), "rack count");
  }
};

}  // namespace ppdc
