// Small synthetic topologies used by tests and property sweeps: rings,
// stars, and random connected graphs. These stress the algorithms on
// distance structures a fat-tree never produces.
#pragma once

#include <cstdint>

#include "topology/topology.hpp"

namespace ppdc {

/// Ring of `num_switches` switches with one host attached to each switch.
Topology build_ring(int num_switches);

/// Star: one hub switch connected to `num_leaf_switches` switches, each
/// leaf switch carrying one host.
Topology build_star(int num_leaf_switches);

/// Random connected graph: `num_switches` switches wired first as a random
/// spanning tree plus `extra_edges` random chords, and `num_hosts` hosts
/// attached to random switches. Edge weights are uniform in
/// [min_weight, max_weight].
Topology build_random_connected(int num_switches, int num_hosts,
                                int extra_edges, double min_weight,
                                double max_weight, std::uint64_t seed);

}  // namespace ppdc
