// BCube topology (Guo et al., SIGCOMM 2009): a server-centric recursive
// fabric. BCube(n, 0) is n servers on one switch; BCube(n, k) is n copies
// of BCube(n, k-1) plus n^k level-k switches, with server
// (a_k, ..., a_1, a_0) connected to level-j switch indexed by dropping
// digit a_j. Hosts have degree k+1, so shortest switch-to-switch paths
// run *through servers* — a structurally different stress for the
// migration-frontier machinery (which must pause VNFs only on switches).
#pragma once

#include "topology/topology.hpp"

namespace ppdc {

/// Builds BCube(n, levels): n >= 2 servers per level-0 switch,
/// levels >= 0. Total hosts n^(levels+1), switches (levels+1) * n^levels.
/// Racks are the level-0 switch groups. Unit edge weights.
Topology build_bcube(int n, int levels);

}  // namespace ppdc
