// Linear PPDC of the paper's Fig. 1: a chain of switches with one host at
// each end. Useful for worked-example tests (the 58.6% cost-reduction
// example of Fig. 1/Fig. 3 lives on this topology) and for intuition-sized
// demos.
#pragma once

#include "topology/topology.hpp"

namespace ppdc {

/// Builds h1 - s1 - s2 - ... - s_num_switches - h2 with unit edge weights.
/// Each end host forms its own single-host "rack" on the adjacent switch.
Topology build_linear(int num_switches);

}  // namespace ppdc
