#include "topology/weights.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace ppdc {

namespace {

/// Collects each undirected edge once as (min(u,v), max(u,v)).
std::vector<std::pair<NodeId, NodeId>> collect_edges(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& a : g.neighbors(u)) {
      if (u < a.to) edges.emplace_back(u, a.to);
    }
  }
  return edges;
}

}  // namespace

void apply_unit_weights(Graph& g) {
  for (const auto& [u, v] : collect_edges(g)) {
    g.set_edge_weight(u, v, 1.0);
  }
}

void apply_uniform_delay_weights(Graph& g, std::uint64_t seed, double mean,
                                 double variance) {
  PPDC_REQUIRE(mean > 0.0, "mean delay must be positive");
  PPDC_REQUIRE(variance >= 0.0, "variance must be non-negative");
  // Uniform on [a, b] has variance (b-a)^2 / 12; with center `mean`,
  // half-width = sqrt(3 * variance).
  const double half = std::sqrt(3.0 * variance);
  Rng rng(seed);
  constexpr double kFloor = 1e-3;
  for (const auto& [u, v] : collect_edges(g)) {
    const double w = rng.uniform_real(mean - half, mean + half);
    g.set_edge_weight(u, v, std::max(kFloor, w));
  }
}

}  // namespace ppdc
