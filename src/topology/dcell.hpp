// DCell_1 topology (Guo et al., SIGCOMM 2008): another server-centric
// fabric. A DCell_0 is n servers on one mini-switch; DCell_1 wires n+1
// DCell_0 cells by direct server-to-server links (server j-1 of cell i
// connects to server i of cell j, for i < j). Servers have degree 2 and
// relay traffic — the extreme opposite of the fat-tree's leaf hosts, and
// a stress test for algorithms that assume switch-centric fabrics.
#pragma once

#include "topology/topology.hpp"

namespace ppdc {

/// Builds DCell_1 with parameter n >= 2: (n+1) cells, n(n+1) servers,
/// n+1 mini-switches. Unit edge weights.
Topology build_dcell1(int n);

}  // namespace ppdc
