// VL2 topology (Greenberg et al., SIGCOMM 2009): a Clos fabric with
// top-of-rack, aggregation and intermediate layers. Each ToR connects to
// two aggregation switches; every aggregation switch connects to every
// intermediate switch. Exercises the algorithms on a fabric whose
// "core" (the intermediate layer) is reached through exactly one
// aggregation hop — a different distance profile from the fat-tree.
#pragma once

#include "topology/topology.hpp"

namespace ppdc {

/// Builds a VL2 fabric: `num_intermediate` intermediates,
/// `num_aggregation` aggregation switches (must be >= 2), `num_tors`
/// ToR switches with `hosts_per_tor` hosts each. ToR r connects to
/// aggregation switches r % A and (r + 1) % A. Unit edge weights.
Topology build_vl2(int num_intermediate, int num_aggregation, int num_tors,
                   int hosts_per_tor);

}  // namespace ppdc
