#include "topology/misc.hpp"

#include <string>

#include "graph/graph.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace ppdc {

Topology build_ring(int num_switches) {
  PPDC_REQUIRE(num_switches >= 3, "ring needs at least 3 switches");
  Topology t;
  t.name = "ring-" + std::to_string(num_switches);
  Graph& g = t.graph;
  std::vector<NodeId> sw;
  for (int i = 0; i < num_switches; ++i) {
    sw.push_back(g.add_node(NodeKind::kSwitch));
  }
  for (int i = 0; i < num_switches; ++i) {
    g.add_edge(sw[static_cast<std::size_t>(i)],
               sw[static_cast<std::size_t>((i + 1) % num_switches)]);
  }
  for (int i = 0; i < num_switches; ++i) {
    const NodeId h = g.add_node(NodeKind::kHost);
    g.add_edge(sw[static_cast<std::size_t>(i)], h);
    t.racks.push_back({h});
    t.rack_switches.push_back(sw[static_cast<std::size_t>(i)]);
  }
  return t;
}

Topology build_star(int num_leaf_switches) {
  PPDC_REQUIRE(num_leaf_switches >= 1, "star needs at least 1 leaf switch");
  Topology t;
  t.name = "star-" + std::to_string(num_leaf_switches);
  Graph& g = t.graph;
  const NodeId hub = g.add_node(NodeKind::kSwitch, "hub");
  for (int i = 0; i < num_leaf_switches; ++i) {
    const NodeId sw = g.add_node(NodeKind::kSwitch);
    g.add_edge(hub, sw);
    const NodeId h = g.add_node(NodeKind::kHost);
    g.add_edge(sw, h);
    t.racks.push_back({h});
    t.rack_switches.push_back(sw);
  }
  return t;
}

Topology build_random_connected(int num_switches, int num_hosts,
                                int extra_edges, double min_weight,
                                double max_weight, std::uint64_t seed) {
  PPDC_REQUIRE(num_switches >= 1, "need at least one switch");
  PPDC_REQUIRE(num_hosts >= 0, "negative host count");
  PPDC_REQUIRE(min_weight > 0.0 && min_weight <= max_weight,
               "bad weight range");
  Rng rng(seed);
  Topology t;
  t.name = "random-" + std::to_string(num_switches);
  Graph& g = t.graph;

  std::vector<NodeId> sw;
  for (int i = 0; i < num_switches; ++i) {
    sw.push_back(g.add_node(NodeKind::kSwitch));
  }
  // Random spanning tree: attach node i to a random earlier node.
  for (int i = 1; i < num_switches; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, i - 1));
    g.add_edge(sw[static_cast<std::size_t>(i)], sw[j],
               rng.uniform_real(min_weight, max_weight));
  }
  // Random chords (skip duplicates).
  for (int e = 0; e < extra_edges; ++e) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, num_switches - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, num_switches - 1));
    if (a == b || g.has_edge(sw[a], sw[b])) continue;
    g.add_edge(sw[a], sw[b], rng.uniform_real(min_weight, max_weight));
  }
  // Hosts on random switches; group them into racks by switch.
  std::vector<std::vector<NodeId>> by_switch(
      static_cast<std::size_t>(num_switches));
  for (int h = 0; h < num_hosts; ++h) {
    const auto s =
        static_cast<std::size_t>(rng.uniform_int(0, num_switches - 1));
    const NodeId host = g.add_node(NodeKind::kHost);
    g.add_edge(sw[s], host, rng.uniform_real(min_weight, max_weight));
    by_switch[s].push_back(host);
  }
  for (int s = 0; s < num_switches; ++s) {
    if (!by_switch[static_cast<std::size_t>(s)].empty()) {
      t.racks.push_back(by_switch[static_cast<std::size_t>(s)]);
      t.rack_switches.push_back(sw[static_cast<std::size_t>(s)]);
    }
  }
  return t;
}

}  // namespace ppdc
