#include "topology/bcube.hpp"

#include <cmath>
#include <string>

#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

Topology build_bcube(int n, int levels) {
  PPDC_REQUIRE(n >= 2, "BCube needs n >= 2 servers per switch");
  PPDC_REQUIRE(levels >= 0 && levels <= 3, "supported levels: 0..3");

  int num_hosts = 1;
  for (int i = 0; i <= levels; ++i) num_hosts *= n;
  int switches_per_level = num_hosts / n;  // n^levels

  Topology t;
  t.name = "bcube-" + std::to_string(n) + "-" + std::to_string(levels);
  Graph& g = t.graph;

  // Hosts are addressed by digit vectors (a_levels .. a_0) base n.
  std::vector<NodeId> hosts;
  hosts.reserve(static_cast<std::size_t>(num_hosts));
  for (int h = 0; h < num_hosts; ++h) {
    hosts.push_back(g.add_node(NodeKind::kHost, "srv" + std::to_string(h)));
  }

  // Level-j switches: one per combination of all digits except a_j.
  for (int level = 0; level <= levels; ++level) {
    std::vector<NodeId> level_switches;
    level_switches.reserve(static_cast<std::size_t>(switches_per_level));
    for (int s = 0; s < switches_per_level; ++s) {
      level_switches.push_back(g.add_node(
          NodeKind::kSwitch,
          "sw" + std::to_string(level) + "_" + std::to_string(s)));
    }
    int stride = 1;
    for (int i = 0; i < level; ++i) stride *= n;
    for (int h = 0; h < num_hosts; ++h) {
      // Switch index: host address with digit `level` removed.
      const int low = h % stride;
      const int high = h / (stride * n);
      const int sw_index = high * stride + low;
      g.add_edge(hosts[static_cast<std::size_t>(h)],
                 level_switches[static_cast<std::size_t>(sw_index)]);
    }
    if (level == 0) {
      // Level-0 switch groups are the racks.
      std::vector<std::vector<NodeId>> racks(
          static_cast<std::size_t>(switches_per_level));
      for (int h = 0; h < num_hosts; ++h) {
        racks[static_cast<std::size_t>(h / n)].push_back(
            hosts[static_cast<std::size_t>(h)]);
      }
      for (int s = 0; s < switches_per_level; ++s) {
        t.racks.push_back(racks[static_cast<std::size_t>(s)]);
        t.rack_switches.push_back(
            level_switches[static_cast<std::size_t>(s)]);
      }
    }
  }

  PPDC_REQUIRE(t.num_hosts() == num_hosts, "host count mismatch");
  PPDC_REQUIRE(t.num_switches() == (levels + 1) * switches_per_level,
               "switch count mismatch");
  return t;
}

}  // namespace ppdc
