// Steering (Zhang et al., ICNP 2013 [55]) — VNF placement baseline.
//
// Steering orders services by dependency degree (traffic between
// consecutive services of a chain) and places each at its best location —
// the switch minimizing the traffic-weighted average time between
// subscribers and the service. In the paper's single-SFC model (§VI) every
// service carries the same aggregate traffic Λ, so Steering reduces to
// placing f_1 .. f_n one by one, each at the unused switch with minimum
// A(w) + B(w). Crucially, Steering was designed for fleets of short
// chains sharing services and has no notion of a chain's *internal*
// adjacency — which is why the chain-aware DP of Algorithm 3 beats it by
// the 56-64% reported in Figs. 9-10.
#pragma once

#include "core/cost_model.hpp"
#include "core/placement_dp.hpp"

namespace ppdc {

/// Steering placement for TOP.
PlacementResult solve_top_steering(const CostModel& model, int n);

}  // namespace ppdc
