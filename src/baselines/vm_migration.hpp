// VM-migration baselines compared against VNF migration in §VI:
//
//  * PLAN (Cui et al., IEEE TPDS 2017 [17]): policy-aware greedy VM
//    management. Each VM's *utility* is the reduction of its communication
//    cost minus its migration cost; PLAN repeatedly applies the highest
//    positive-utility moves to hosts with available resources.
//  * MCF (Flores et al., INFOCOM 2020 [24]): casts the joint
//    "minimize communication + migration cost" VM re-assignment as a
//    minimum-cost flow problem (source -> VM -> host -> sink with unit VM
//    supply and host capacities) and solves it exactly with our
//    flow::MinCostFlow substrate.
//
// Both baselines keep the VNF placement p fixed and move VM endpoints:
// a source VM's cost term is λ_i c(s(v_i), p(1)), a destination VM's is
// λ_i c(p(n), s(v'_i)). VM migration pays μ c(old_host, new_host) with the
// same migration coefficient as VNFs (both transfer a memory image across
// the fabric; §VI quantifies μ from the memory/packet size ratio).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "graph/apsp.hpp"
#include "util/ids.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// Shared knobs of the VM-migration baselines.
struct VmMigrationConfig {
  double mu = 1.0;        ///< migration coefficient
  int host_capacity = 0;  ///< max VMs per host; 0 = uncapacitated
  /// Hours a migrated VM is expected to stay put. The communication-cost
  /// reduction of a move is amortized over this horizon when weighed
  /// against the one-off migration cost (PLAN's utility and MCF's arc
  /// costs). 1.0 = myopic single-epoch accounting.
  double horizon_hours = 1.0;
  /// Candidate target hosts per VM, nearest to its relevant VNF endpoint
  /// (plus the current host). 0 = consider every host. Bounds the MCF
  /// network and the PLAN scan on 1024-host PPDCs.
  int candidate_hosts = 0;
  int max_rounds = 3;  ///< PLAN improvement rounds
};

/// Outcome of a VM-migration decision.
struct VmMigrationResult {
  std::vector<VmFlow> flows;    ///< flows with updated endpoints
  double migration_cost = 0.0;  ///< Σ μ c(old, new)
  double migration_distance = 0.0;  ///< Σ c(old, new) (no μ factor)
  double comm_cost = 0.0;       ///< total communication cost afterwards
  double total_cost = 0.0;      ///< sum of the two
  int vms_moved = 0;
  /// Ids (into `flows`) of flows whose src and/or dst host changed —
  /// sorted, deduplicated. Drives the cost model's incremental
  /// endpoints_moved() maintenance.
  std::vector<FlowId> moved_flow_indices;
};

/// PLAN greedy VM migration.
VmMigrationResult solve_vm_migration_plan(const AllPairs& apsp,
                                          const std::vector<VmFlow>& flows,
                                          const Placement& vnf_placement,
                                          const VmMigrationConfig& config);

/// MCF exact VM re-assignment via minimum-cost flow.
VmMigrationResult solve_vm_migration_mcf(const AllPairs& apsp,
                                         const std::vector<VmFlow>& flows,
                                         const Placement& vnf_placement,
                                         const VmMigrationConfig& config);

}  // namespace ppdc
