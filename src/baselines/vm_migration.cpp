#include "baselines/vm_migration.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "flow/min_cost_flow.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One movable VM endpoint: flow id + whether it is the source side.
struct Endpoint {
  FlowId flow{0};
  bool is_source = true;

  NodeId host(const std::vector<VmFlow>& flows) const {
    const auto& f = flows[static_cast<std::size_t>(flow.value())];
    return is_source ? f.src_host : f.dst_host;
  }
  void set_host(std::vector<VmFlow>& flows, NodeId h) const {
    auto& f = flows[static_cast<std::size_t>(flow.value())];
    (is_source ? f.src_host : f.dst_host) = h;
  }
  /// The VNF-chain endpoint this VM talks to.
  NodeId anchor(const Placement& p) const {
    return is_source ? p.front() : p.back();
  }
};

std::vector<Endpoint> all_endpoints(const std::vector<VmFlow>& flows) {
  std::vector<Endpoint> eps;
  eps.reserve(flows.size() * 2);
  for (const FlowId i : id_range<FlowId>(flows.size())) {
    eps.push_back({i, true});
    eps.push_back({i, false});
  }
  return eps;
}

/// Communication cost term owned by one endpoint at host h. Rate-zero
/// flows (including fault-quarantined ones, whose endpoint distances may
/// be +inf on a degraded fabric) cost nothing — the explicit guard keeps
/// the arithmetic NaN-free (0 * inf = NaN).
double endpoint_cost(const AllPairs& apsp, const std::vector<VmFlow>& flows,
                     const Endpoint& ep, const Placement& p, NodeId h) {
  const double rate = flows[static_cast<std::size_t>(ep.flow.value())].rate;
  if (rate == 0.0) return 0.0;
  return rate * apsp.cost(h, ep.anchor(p));
}

/// Full communication cost of all flows (chain legs included).
double full_comm_cost(const AllPairs& apsp, const std::vector<VmFlow>& flows,
                      const Placement& p) {
  double chain = 0.0;
  for (std::size_t j = 0; j + 1 < p.size(); ++j) {
    chain += apsp.cost(p[j], p[j + 1]);
  }
  double total = 0.0;
  for (const auto& f : flows) {
    if (f.rate == 0.0) continue;  // NaN-safety, see endpoint_cost
    total += f.rate * (apsp.cost(f.src_host, p.front()) + chain +
                       apsp.cost(p.back(), f.dst_host));
  }
  return total;
}

/// Host occupancy (number of VMs per host id).
std::vector<int> occupancy(const AllPairs& apsp,
                           const std::vector<VmFlow>& flows) {
  std::vector<int> occ(static_cast<std::size_t>(apsp.num_nodes()), 0);
  for (const auto& f : flows) {
    ++occ[static_cast<std::size_t>(f.src_host)];
    ++occ[static_cast<std::size_t>(f.dst_host)];
  }
  return occ;
}

/// Sorts and deduplicates the moved-flow id list (src and dst moves of
/// one flow collapse to a single entry).
void finalize_moved_indices(std::vector<FlowId>& moved) {
  std::sort(moved.begin(), moved.end());
  moved.erase(std::unique(moved.begin(), moved.end()), moved.end());
}

/// Candidate hosts for an endpoint: nearest `limit` hosts to its anchor
/// switch plus its current host (limit 0 = all hosts).
std::vector<NodeId> candidate_hosts(const AllPairs& apsp,
                                    const std::vector<NodeId>& hosts,
                                    NodeId anchor, NodeId current,
                                    int limit) {
  if (limit <= 0 || static_cast<std::size_t>(limit) >= hosts.size()) {
    return hosts;
  }
  std::vector<NodeId> sorted = hosts;
  std::nth_element(sorted.begin(), sorted.begin() + limit, sorted.end(),
                   [&](NodeId a, NodeId b) {
                     return apsp.cost(a, anchor) < apsp.cost(b, anchor);
                   });
  sorted.resize(static_cast<std::size_t>(limit));
  if (std::find(sorted.begin(), sorted.end(), current) == sorted.end()) {
    sorted.push_back(current);
  }
  return sorted;
}

}  // namespace

VmMigrationResult solve_vm_migration_plan(const AllPairs& apsp,
                                          const std::vector<VmFlow>& flows,
                                          const Placement& vnf_placement,
                                          const VmMigrationConfig& config) {
  PPDC_REQUIRE(!vnf_placement.empty(), "empty VNF placement");
  PPDC_REQUIRE(config.mu >= 0.0, "negative migration coefficient");
  const auto& hosts = apsp.graph().hosts();

  VmMigrationResult result;
  result.flows = flows;
  std::vector<int> occ = occupancy(apsp, flows);
  const auto endpoints = all_endpoints(flows);

  for (int round = 0; round < config.max_rounds; ++round) {
    // Best candidate move per endpoint, by utility (positive only).
    struct Move {
      std::size_t ep_index;
      NodeId target;
      double utility;
    };
    std::vector<Move> moves;
    for (std::size_t e = 0; e < endpoints.size(); ++e) {
      const Endpoint& ep = endpoints[e];
      const NodeId cur = ep.host(result.flows);
      const double cur_cost =
          endpoint_cost(apsp, result.flows, ep, vnf_placement, cur);
      double best_u = 0.0;
      NodeId best_h = kInvalidNode;
      for (const NodeId h :
           candidate_hosts(apsp, hosts, ep.anchor(vnf_placement), cur,
                           config.candidate_hosts)) {
        if (h == cur) continue;
        const double u =
            config.horizon_hours *
                (cur_cost -
                 endpoint_cost(apsp, result.flows, ep, vnf_placement, h)) -
            config.mu * apsp.cost(cur, h);
        if (u > best_u) {
          best_u = u;
          best_h = h;
        }
      }
      if (best_h != kInvalidNode) {
        moves.push_back({e, best_h, best_u});
      }
    }
    if (moves.empty()) break;
    std::sort(moves.begin(), moves.end(),
              [](const Move& a, const Move& b) { return a.utility > b.utility; });
    int applied = 0;
    for (const Move& mv : moves) {
      const Endpoint& ep = endpoints[mv.ep_index];
      const NodeId cur = ep.host(result.flows);
      if (cur == mv.target) continue;
      if (config.host_capacity > 0 &&
          occ[static_cast<std::size_t>(mv.target)] >= config.host_capacity) {
        continue;
      }
      // Re-validate the utility against the current state (earlier moves
      // in this round may have shifted this endpoint's flow already).
      const double u =
          config.horizon_hours *
              (endpoint_cost(apsp, result.flows, ep, vnf_placement, cur) -
               endpoint_cost(apsp, result.flows, ep, vnf_placement,
                             mv.target)) -
          config.mu * apsp.cost(cur, mv.target);
      if (u <= 0.0) continue;
      result.migration_cost += config.mu * apsp.cost(cur, mv.target);
      result.migration_distance += apsp.cost(cur, mv.target);
      --occ[static_cast<std::size_t>(cur)];
      ++occ[static_cast<std::size_t>(mv.target)];
      ep.set_host(result.flows, mv.target);
      result.moved_flow_indices.push_back(ep.flow);
      ++result.vms_moved;
      ++applied;
    }
    if (applied == 0) break;
  }

  finalize_moved_indices(result.moved_flow_indices);
  result.comm_cost = full_comm_cost(apsp, result.flows, vnf_placement);
  result.total_cost = result.comm_cost + result.migration_cost;
  return result;
}

VmMigrationResult solve_vm_migration_mcf(const AllPairs& apsp,
                                         const std::vector<VmFlow>& flows,
                                         const Placement& vnf_placement,
                                         const VmMigrationConfig& config) {
  PPDC_REQUIRE(!vnf_placement.empty(), "empty VNF placement");
  PPDC_REQUIRE(config.mu >= 0.0, "negative migration coefficient");
  const auto& hosts = apsp.graph().hosts();
  const auto endpoints = all_endpoints(flows);

  if (config.host_capacity <= 0) {
    // Uncapacitated MCF decomposes exactly: with no coupling constraint,
    // every unit of flow independently takes its cheapest VM -> host arc,
    // so the per-endpoint argmin *is* the min-cost flow optimum. This fast
    // path keeps the 1024-host dynamic experiments tractable.
    VmMigrationResult result;
    result.flows = flows;
    for (const Endpoint& ep : endpoints) {
      const NodeId cur = ep.host(flows);
      double best = config.horizon_hours *
                    endpoint_cost(apsp, flows, ep, vnf_placement, cur);
      NodeId best_h = cur;
      for (const NodeId h :
           candidate_hosts(apsp, hosts, ep.anchor(vnf_placement), cur,
                           config.candidate_hosts)) {
        const double cost =
            config.horizon_hours *
                endpoint_cost(apsp, flows, ep, vnf_placement, h) +
            config.mu * apsp.cost(cur, h);
        if (cost < best) {
          best = cost;
          best_h = h;
        }
      }
      if (best_h != cur) {
        result.migration_cost += config.mu * apsp.cost(cur, best_h);
        result.migration_distance += apsp.cost(cur, best_h);
        ++result.vms_moved;
        ep.set_host(result.flows, best_h);
        result.moved_flow_indices.push_back(ep.flow);
      }
    }
    finalize_moved_indices(result.moved_flow_indices);
    result.comm_cost = full_comm_cost(apsp, result.flows, vnf_placement);
    result.total_cost = result.comm_cost + result.migration_cost;
    return result;
  }

  // Node layout: 0 = source, 1 = sink, [2, 2+E) = endpoints,
  // [2+E, 2+E+H) = hosts.
  const int num_eps = static_cast<int>(endpoints.size());
  const int num_hosts = static_cast<int>(hosts.size());
  const int ep_base = 2;
  const int host_base = 2 + num_eps;
  MinCostFlow mcf(2 + num_eps + num_hosts);

  std::vector<int> host_row(static_cast<std::size_t>(apsp.num_nodes()), -1);
  for (int h = 0; h < num_hosts; ++h) {
    host_row[static_cast<std::size_t>(hosts[static_cast<std::size_t>(h)])] = h;
  }

  for (int e = 0; e < num_eps; ++e) {
    mcf.add_arc(0, ep_base + e, 1, 0.0);
  }
  // VM -> candidate host arcs carry comm-at-host + migration cost.
  struct ArcRef {
    int arc_id;
    int ep;
    NodeId host;
  };
  std::vector<ArcRef> refs;
  for (int e = 0; e < num_eps; ++e) {
    const Endpoint& ep = endpoints[static_cast<std::size_t>(e)];
    const NodeId cur = ep.host(flows);
    for (const NodeId h :
         candidate_hosts(apsp, hosts, ep.anchor(vnf_placement), cur,
                         config.candidate_hosts)) {
      const double cost =
          config.horizon_hours *
              endpoint_cost(apsp, flows, ep, vnf_placement, h) +
          config.mu * apsp.cost(cur, h);
      // On a degraded fabric an unreachable candidate costs +inf; such
      // arcs would poison the MCF potentials, so drop them. The
      // current-host arc is always finite (zero migration distance and a
      // guarded endpoint cost), keeping the status quo feasible.
      if (!std::isfinite(cost)) continue;
      const int row = host_row[static_cast<std::size_t>(h)];
      PPDC_REQUIRE(row >= 0, "candidate host missing from host table");
      refs.push_back(
          {mcf.add_arc(ep_base + e, host_base + row, 1, cost), e, h});
    }
  }
  // Per-host capacity: the configured limit, but never below the host's
  // current occupancy — the status quo must stay feasible even when the
  // initial workload already exceeds the nominal limit (hot racks under
  // Zipf tenant skew do).
  const std::vector<int> occ = occupancy(apsp, flows);
  for (int h = 0; h < num_hosts; ++h) {
    const NodeId host = hosts[static_cast<std::size_t>(h)];
    const std::int64_t cap = std::max<std::int64_t>(
        config.host_capacity, occ[static_cast<std::size_t>(host)]);
    mcf.add_arc(host_base + h, 1, cap, 0.0);
  }

  const auto solved = mcf.solve(0, 1);
  PPDC_REQUIRE(solved.flow == num_eps,
               "MCF could not place every VM (capacity too tight)");

  VmMigrationResult result;
  result.flows = flows;
  for (const ArcRef& ref : refs) {
    if (mcf.flow_on(ref.arc_id) == 0) continue;
    const Endpoint& ep = endpoints[static_cast<std::size_t>(ref.ep)];
    const NodeId cur = ep.host(flows);
    if (ref.host != cur) {
      result.migration_cost += config.mu * apsp.cost(cur, ref.host);
      result.migration_distance += apsp.cost(cur, ref.host);
      ++result.vms_moved;
      ep.set_host(result.flows, ref.host);
      result.moved_flow_indices.push_back(ep.flow);
    }
  }
  finalize_moved_indices(result.moved_flow_indices);
  result.comm_cost = full_comm_cost(apsp, result.flows, vnf_placement);
  result.total_cost = result.comm_cost + result.migration_cost;
  return result;
}

}  // namespace ppdc
