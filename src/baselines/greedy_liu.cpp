#include "baselines/greedy_liu.hpp"

#include <algorithm>
#include <limits>

#include "core/cost_model.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

PlacementResult solve_top_greedy_liu(const CostModel& model, int n) {
  const AllPairs& apsp = model.apsp();
  const auto& switches = apsp.graph().switches();
  PPDC_REQUIRE(n >= 1, "need at least one VNF");
  PPDC_REQUIRE(static_cast<std::size_t>(n) <= switches.size(),
               "more VNFs than switches");

  // Mean switch-to-switch distance from each switch — the "weighted
  // average delay of all unplaced MBs to this MB" estimate (the locations
  // of unplaced MBs are unknown, so the original heuristic averages over
  // the candidate space).
  std::vector<double> avg_dist(
      static_cast<std::size_t>(apsp.num_nodes()), 0.0);
  for (const NodeId w : switches) {
    double sum = 0.0;
    for (const NodeId v : switches) sum += apsp.cost(w, v);
    avg_dist[static_cast<std::size_t>(w)] =
        sum / static_cast<double>(switches.size());
  }

  // MBs are sorted by importance = number of policies using them; with a
  // single SFC all are tied, so the processing order is arbitrary (not the
  // chain order — the heuristic has no notion of intra-chain adjacency).
  // Each MB goes to the switch with the minimum cost score: the increment
  // of total end-to-end delay of routing every policy through the MB at
  // that switch, plus the lookahead term above for the MBs still missing.
  Placement p;
  p.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const int unplaced_after = n - 1 - j;
    double best = std::numeric_limits<double>::infinity();
    NodeId best_w = kInvalidNode;
    for (const NodeId w : switches) {
      if (std::find(p.begin(), p.end(), w) != p.end()) continue;
      // Delay increment of pulling all flows through an MB at w, measured
      // against the flow endpoints (chain neighbours are unknown at
      // placement time): half the round-trip attraction.
      const double delta =
          0.5 * (model.ingress_attraction(w) + model.egress_attraction(w));
      const double lookahead = model.total_rate() *
                               static_cast<double>(unplaced_after) *
                               avg_dist[static_cast<std::size_t>(w)];
      const double score = delta + lookahead;
      if (score < best) {
        best = score;
        best_w = w;
      }
    }
    PPDC_REQUIRE(best_w != kInvalidNode, "ran out of switches");
    p.push_back(best_w);
  }

  PlacementResult r;
  r.comm_cost = model.communication_cost(p);
  r.placement = std::move(p);
  return r;
}

}  // namespace ppdc
