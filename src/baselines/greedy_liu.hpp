// Greedy (Liu et al., IEEE TSC 2017 [34]) — VNF placement baseline.
//
// Liu's two-step greedy first sorts middleboxes by importance (number of
// policies traversing each — all tied under the paper's single-SFC model)
// and then places each MB at the switch with the minimum *cost score*:
// the increment of the total end-to-end delay caused by adding the MB at
// that switch, plus the weighted average delay of all still-unplaced MBs
// to that MB. Like Steering, the heuristic reasons about MBs relative to
// the flow endpoints and the yet-unplaced MBs, not about the chain's
// internal order; the lookahead term additionally pulls early placements
// toward globally central switches, which is why Greedy trails Steering
// in the paper's Figs. 9-10.
#pragma once

#include "core/cost_model.hpp"
#include "core/placement_dp.hpp"

namespace ppdc {

/// Liu-style greedy placement for TOP.
PlacementResult solve_top_greedy_liu(const CostModel& model, int n);

}  // namespace ppdc
