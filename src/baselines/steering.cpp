#include "baselines/steering.hpp"

#include <algorithm>
#include <limits>

#include "core/cost_model.hpp"
#include "graph/apsp.hpp"
#include "graph/graph.hpp"
#include "util/require.hpp"

namespace ppdc {

PlacementResult solve_top_steering(const CostModel& model, int n) {
  const AllPairs& apsp = model.apsp();
  const auto& switches = apsp.graph().switches();
  PPDC_REQUIRE(n >= 1, "need at least one VNF");
  PPDC_REQUIRE(static_cast<std::size_t>(n) <= switches.size(),
               "more VNFs than switches");

  // Steering places each service independently at its best location — the
  // switch minimizing the traffic-weighted average time between the
  // subscribers and the service, i.e. A(w) + B(w). It never reasons about
  // the chain's internal adjacency (it was designed for many short chains
  // sharing services), which is the gap the paper's DP exploits.
  Placement p;
  p.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    double best = std::numeric_limits<double>::infinity();
    NodeId best_w = kInvalidNode;
    for (const NodeId w : switches) {
      if (std::find(p.begin(), p.end(), w) != p.end()) continue;
      const double score =
          model.ingress_attraction(w) + model.egress_attraction(w);
      if (score < best) {
        best = score;
        best_w = w;
      }
    }
    PPDC_REQUIRE(best_w != kInvalidNode, "ran out of switches");
    p.push_back(best_w);
  }

  PlacementResult r;
  r.comm_cost = model.communication_cost(p);
  r.placement = std::move(p);
  return r;
}

}  // namespace ppdc
