// Streaming statistics and confidence intervals.
//
// The paper reports every data point as the average of 20 runs with a 95%
// confidence interval (§VI). `RunningStats` accumulates samples with
// Welford's algorithm (numerically stable single pass) and
// `confidence_interval_95` returns the half-width using Student's
// t-distribution for small sample counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppdc {

/// Welford single-pass accumulator for mean / variance / extremes.
class RunningStats {
 public:
  /// Exact internal state, for bit-faithful (de)serialization — the
  /// checkpoint journal must restore an accumulator that merges
  /// identically to the original, so the raw IEEE doubles are exposed,
  /// never derived quantities.
  struct Raw {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of the 95% confidence interval on the mean
  /// (Student's t for n <= 30, normal approximation beyond). 0 for n < 2.
  double ci95_halfwidth() const noexcept;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  /// Snapshot of the exact internal state (see Raw).
  Raw raw() const noexcept;
  /// Rebuilds an accumulator from a snapshot, bit for bit.
  static RunningStats from_raw(const Raw& raw) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sample vector (0 for empty input).
double mean_of(const std::vector<double>& xs) noexcept;

/// Two-sided 97.5% quantile of Student's t with `df` degrees of freedom,
/// i.e. the multiplier for a 95% CI. Exact table for df in [1,30], 1.96
/// beyond.
double t_quantile_975(std::size_t df) noexcept;

/// Summary of repeated-trial measurements: mean and 95% CI half-width.
struct MeanCi {
  double mean = 0.0;
  double ci95 = 0.0;
};

/// Computes mean and CI over a sample vector in one call.
MeanCi mean_ci(const std::vector<double>& samples) noexcept;

}  // namespace ppdc
