// Data-integrity primitives: CRC-32 framing and 64-bit structural hashes.
//
// Two distinct jobs, two distinct tools:
//
//   * Crc32 / crc32() — the IEEE 802.3 CRC (reflected polynomial
//     0xEDB88320), table-driven and incremental. Used to frame journal
//     records (sim/checkpoint) and to footer serialized artifacts
//     (io/serialize), so torn writes and bit rot are *detected* instead
//     of silently merged into results.
//   * Hash64 — FNV-1a over typed fields, for configuration fingerprints
//     (is this journal's experiment the same experiment I am running?).
//     Not cryptographic; it guards against accidents, not adversaries.
//
// Both are header-only and allocation-free; doubles are hashed by IEEE
// bit pattern (std::bit_cast), never by value rounding, because the
// fingerprint contract of the checkpoint layer is bit-exactness.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ppdc {

namespace detail {

/// 256-entry lookup table of the reflected IEEE CRC-32 polynomial.
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incremental CRC-32 (IEEE 802.3). Feed bytes in any chunking; value()
/// may be read at any point without disturbing the accumulator.
class Crc32 {
 public:
  void update(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      crc_ = detail::kCrc32Table[(crc_ ^ p[i]) & 0xFFu] ^ (crc_ >> 8);
    }
  }
  void update(std::string_view bytes) noexcept {
    update(bytes.data(), bytes.size());
  }

  /// CRC of everything fed so far ("123456789" -> 0xCBF43926).
  std::uint32_t value() const noexcept { return crc_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t crc_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a byte range.
inline std::uint32_t crc32(const void* data, std::size_t len) noexcept {
  Crc32 c;
  c.update(data, len);
  return c.value();
}

inline std::uint32_t crc32(std::string_view bytes) noexcept {
  return crc32(bytes.data(), bytes.size());
}

/// FNV-1a (64-bit) accumulator over typed fields. Integers are widened to
/// 8 bytes and strings are length-prefixed before hashing, so field
/// boundaries cannot alias ("ab"+"c" never hashes like "a"+"bc").
class Hash64 {
 public:
  Hash64& bytes(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001B3ULL;
    }
    return *this;
  }

  Hash64& u64(std::uint64_t v) noexcept { return bytes(&v, sizeof v); }
  Hash64& i64(std::int64_t v) noexcept {
    return u64(static_cast<std::uint64_t>(v));
  }
  Hash64& b(bool v) noexcept { return u64(v ? 1 : 0); }
  /// IEEE bit pattern — two doubles hash equal iff they are bit-identical.
  Hash64& f64(double v) noexcept { return u64(std::bit_cast<std::uint64_t>(v)); }
  Hash64& str(const std::string& s) noexcept {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;  // FNV offset basis
};

/// One-shot 64-bit hash of a byte string.
inline std::uint64_t hash64(std::string_view bytes) {
  Hash64 h;
  h.bytes(bytes.data(), bytes.size());
  return h.value();
}

}  // namespace ppdc
