#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace ppdc {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  PPDC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  PPDC_REQUIRE(cells.size() == header_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::num_ci(double mean, double ci, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << mean << " ± "
     << std::setprecision(precision) << ci;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  // Saturate: a title longer than the 74-column rule must not underflow
  // the unsigned subtraction into a gigabyte of '='.
  const std::size_t fill =
      title.size() < 74 ? std::max<std::size_t>(4, 74 - title.size()) : 4;
  os << '\n' << "==== " << title << " " << std::string(fill, '=') << '\n';
}

}  // namespace ppdc
