#include "util/rng.hpp"

#include <bit>
#include <cmath>
#include <numeric>

namespace ppdc {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // xoshiro256** forbids the all-zero state; splitmix64 cannot emit four
  // consecutive zeros, but guard anyway for belt-and-braces.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PPDC_REQUIRE(lo <= hi, "uniform_int: empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Unbiased bounded draw via rejection sampling.
  const std::uint64_t limit = max() - max() % span;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r < limit) {
      return lo + static_cast<std::int64_t>(r % span);
    }
  }
}

double Rng::uniform_real(double lo, double hi) {
  PPDC_REQUIRE(lo <= hi, "uniform_real: empty range");
  const double unit =
      static_cast<double>((*this)() >> 11) * 0x1.0p-53;  // [0,1)
  return lo + unit * (hi - lo);
}

bool Rng::bernoulli(double p) {
  PPDC_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
  return uniform_real(0.0, 1.0) < p;
}

double Rng::normal(double mean, double stddev) {
  PPDC_REQUIRE(stddev >= 0.0, "normal: negative stddev");
  double u, v, s;
  do {
    u = uniform_real(-1.0, 1.0);
    v = uniform_real(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  PPDC_REQUIRE(!weights.empty(), "weighted_index: empty weights");
  double total = 0.0;
  for (const double w : weights) {
    PPDC_REQUIRE(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  PPDC_REQUIRE(total > 0.0, "weighted_index: weights sum to zero");
  double x = uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

Rng Rng::split() noexcept {
  std::uint64_t seed = (*this)();
  return Rng(seed);
}

}  // namespace ppdc
