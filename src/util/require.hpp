// Lightweight precondition / invariant checking for the ppdc library.
//
// The library throws `ppdc::PpdcError` (derived from std::runtime_error) on
// contract violations instead of asserting, so misuse is testable and never
// silently ignored in release builds.
#pragma once

#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace ppdc {

/// Exception type thrown on any contract violation inside the library.
class PpdcError : public std::runtime_error {
 public:
  explicit PpdcError(const std::string& what) : std::runtime_error(what) {}
};

/// A failure worth retrying: the operation may succeed on a rerun because
/// the cause is environmental (wall-clock pathology, external solver
/// hiccup, resource pressure), not a deterministic contract violation.
/// The experiment runner retries jobs that fail with TransientError up to
/// ExperimentConfig::retry_limit extra attempts (sim/checkpoint.hpp);
/// plain PpdcError never triggers a retry.
class TransientError : public PpdcError {
 public:
  using PpdcError::PpdcError;
};

namespace detail {
[[noreturn]] void throw_requirement_failed(const char* expr, const char* file,
                                           int line, const std::string& msg);
[[noreturn]] void throw_narrowing_failed(long long value, const char* context);
[[noreturn]] void throw_narrowing_failed(unsigned long long value,
                                         const char* context);
}  // namespace detail

/// Overflow-checked integer narrowing: static_cast that throws PpdcError
/// when `value` is not representable in `To` (e.g. a container size
/// narrowed to a NodeId). `context` names the quantity in the error.
template <class To, class From>
constexpr To checked_cast(From value, const char* context = "integer value") {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_cast converts between integer types only");
  if (!std::in_range<To>(value)) {
    if constexpr (std::is_signed_v<From>) {
      detail::throw_narrowing_failed(static_cast<long long>(value), context);
    } else {
      detail::throw_narrowing_failed(static_cast<unsigned long long>(value),
                                     context);
    }
  }
  return static_cast<To>(value);
}

}  // namespace ppdc

/// Checks `cond`; throws ppdc::PpdcError with context when it is false.
/// Enabled in all build types (these guard API misuse, not hot loops).
#define PPDC_REQUIRE(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::ppdc::detail::throw_requirement_failed(#cond, __FILE__, __LINE__,  \
                                               (msg));                     \
    }                                                                      \
  } while (false)
