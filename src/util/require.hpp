// Lightweight precondition / invariant checking for the ppdc library.
//
// The library throws `ppdc::PpdcError` (derived from std::runtime_error) on
// contract violations instead of asserting, so misuse is testable and never
// silently ignored in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace ppdc {

/// Exception type thrown on any contract violation inside the library.
class PpdcError : public std::runtime_error {
 public:
  explicit PpdcError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_requirement_failed(const char* expr, const char* file,
                                           int line, const std::string& msg);
}  // namespace detail

}  // namespace ppdc

/// Checks `cond`; throws ppdc::PpdcError with context when it is false.
/// Enabled in all build types (these guard API misuse, not hot loops).
#define PPDC_REQUIRE(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::ppdc::detail::throw_requirement_failed(#cond, __FILE__, __LINE__,  \
                                               (msg));                     \
    }                                                                      \
  } while (false)
