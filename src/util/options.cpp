#include "util/options.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/require.hpp"

namespace ppdc {

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    PPDC_REQUIRE(arg.rfind("--", 0) == 0, "options must start with --: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts.kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      opts.kv_[arg] = argv[++i];
    } else {
      opts.kv_[arg] = "true";  // bare flag
    }
  }
  return opts;
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  PPDC_REQUIRE(end != nullptr && *end == '\0',
               "option --" + key + " expects an integer, got " + it->second);
  return v;
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  PPDC_REQUIRE(end != nullptr && *end == '\0',
               "option --" + key + " expects a number, got " + it->second);
  return v;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw PpdcError("option --" + key + " expects a boolean, got " + v);
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> ks;
  ks.reserve(kv_.size());
  for (const auto& [k, v] : kv_) ks.push_back(k);
  return ks;
}

void Options::restrict_to(const std::vector<std::string>& allowed) const {
  for (const auto& [k, v] : kv_) {
    PPDC_REQUIRE(std::find(allowed.begin(), allowed.end(), k) != allowed.end(),
                 "unknown option --" + k);
  }
}

}  // namespace ppdc
