// Resident-set-size probe for the scale benches (EXPERIMENTS.md
// `bench_scale`): current and peak RSS of the calling process, read from
// /proc/self/status (VmRSS / VmHWM). The l >= 1M acceptance numbers pair
// every epoch-latency row with the memory it cost, so the probe lives in
// util where both bench_common table footers and ad-hoc diagnostics can
// reach it.
//
// Portability: /proc is Linux-only. On platforms (or sandboxes) where the
// file is absent or the fields are missing, both probes return 0 — callers
// print "n/a" instead of failing, and no simulation result ever depends on
// the value (it is reporting-only, never part of a fingerprint).
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstring>

namespace ppdc {

namespace detail {

/// Reads one "Vm...:  <kB> kB" field from /proc/self/status; 0 when the
/// file or the field is unavailable.
inline std::size_t proc_status_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0) continue;
    // Format: "VmRSS:\t  123456 kB". Scan past the label for the number.
    unsigned long long v = 0;
    if (std::sscanf(line + field_len, ": %llu", &v) == 1) {
      kb = static_cast<std::size_t>(v);
    }
    break;
  }
  std::fclose(f);
  return kb;
}

}  // namespace detail

/// Current resident set size in bytes (VmRSS), or 0 when unavailable.
inline std::size_t current_rss_bytes() {
  return detail::proc_status_kb("VmRSS") * 1024;
}

/// Peak resident set size in bytes (VmHWM — the high-water mark since
/// process start), or 0 when unavailable.
inline std::size_t peak_rss_bytes() {
  return detail::proc_status_kb("VmHWM") * 1024;
}

}  // namespace ppdc
