// Aligned-plaintext table and CSV emission for benchmark harnesses.
//
// Every figure/table reproduction binary prints its series through
// TablePrinter so the output looks like the paper's rows and can be
// re-plotted. CSV export allows external plotting of the same data.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ppdc {

/// Collects rows of stringified cells and prints an aligned table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats numeric cells with fixed precision.
  static std::string num(double v, int precision = 2);

  /// Formats "mean ± ci" cells.
  static std::string num_ci(double mean, double ci, int precision = 1);

  /// Writes the aligned table to `os`.
  void print(std::ostream& os) const;

  /// Writes the same data as CSV (no alignment, comma-separated).
  void write_csv(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used by the figure harnesses.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace ppdc
