#include "util/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace ppdc {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  const double se = stddev() / std::sqrt(static_cast<double>(n_));
  return t_quantile_975(n_ - 1) * se;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

RunningStats::Raw RunningStats::raw() const noexcept {
  return Raw{static_cast<std::uint64_t>(n_), mean_, m2_, min_, max_};
}

RunningStats RunningStats::from_raw(const Raw& raw) noexcept {
  RunningStats s;
  s.n_ = static_cast<std::size_t>(raw.n);
  s.mean_ = raw.mean;
  s.m2_ = raw.m2;
  s.min_ = raw.min;
  s.max_ = raw.max;
  return s;
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double t_quantile_975(std::size_t df) noexcept {
  // Standard two-sided 95% Student-t critical values, df = 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return std::numeric_limits<double>::infinity();
  if (df <= kTable.size()) return kTable[df - 1];
  return 1.960;
}

MeanCi mean_ci(const std::vector<double>& samples) noexcept {
  RunningStats rs;
  for (const double x : samples) rs.add(x);
  return MeanCi{rs.mean(), rs.ci95_halfwidth()};
}

}  // namespace ppdc
