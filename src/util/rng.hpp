// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (workload generation, tie
// breaking, weighted topologies) draw from ppdc::Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded through splitmix64, which is the standard
// recommendation of the xoshiro authors and is far cheaper than
// std::mt19937_64 while passing BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/require.hpp"

namespace ppdc {

/// splitmix64 step; used for seeding and for cheap hash-style mixing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Normal draw via Marsaglia polar method.
  double normal(double mean, double stddev);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Derives an independent child generator (for per-trial streams).
  Rng split() noexcept;

  /// The full generator state, for checkpointing (sim/checkpoint.hpp):
  /// restore_state() on a default-constructed Rng reproduces the exact
  /// stream position of the generator state() was taken from.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void restore_state(const std::array<std::uint64_t, 4>& s) noexcept {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace ppdc
