// Zero-overhead strongly-typed index wrappers.
//
// The solver stack juggles several distinct integer domains — graph node
// ids, switch-universe rows, flow indices, VNF chain positions, simulation
// hours — and spelling them all as bare ints lets one domain silently leak
// into another (exactly the class of bug the PR 2 sanitizer run caught:
// an out-of-bounds rack index used as a graph id). StrongId<Tag, Rep>
// wraps one integral representation per domain:
//
//   * construction from the raw representation is explicit,
//   * there is no conversion (implicit or explicit) between different
//     tags — cross-domain assignment is a compile error,
//   * comparison, hashing, streaming and ++/-- iteration are provided, so
//     typed ids stay as ergonomic as the raw ints they replace,
//   * sizeof(StrongId<Tag, Rep>) == sizeof(Rep) and every operation is a
//     single underlying integer op — zero runtime overhead.
//
// The concrete domain tags used across the library live in util/ids.hpp;
// DESIGN.md ("Index-domain map") documents which tag owns which subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>

#include "util/require.hpp"

namespace ppdc {

/// A typed index. `Tag` is any (possibly incomplete) type naming the
/// domain; `Rep` is the underlying integral representation. The
/// default-constructed id is invalid() — the domain's sentinel, analogous
/// to kInvalidNode.
template <class Tag, class Rep = std::int32_t>
class StrongId {
  static_assert(std::is_integral_v<Rep> && !std::is_same_v<Rep, bool>,
                "StrongId representation must be a non-bool integer");

 public:
  using tag_type = Tag;
  using rep_type = Rep;

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep value) noexcept : value_(value) {}

  /// The domain sentinel: -1 for signed reps (max for unsigned ones).
  static constexpr StrongId invalid() noexcept { return StrongId{}; }
  constexpr bool valid() const noexcept { return value_ != kInvalid; }

  /// The raw representation. The only way out of the type system — keep
  /// call sites rare and obviously correct.
  constexpr Rep value() const noexcept { return value_; }

  /// Iteration support: typed ids advance like the raw ints they wrap.
  constexpr StrongId& operator++() noexcept {
    ++value_;
    return *this;
  }
  constexpr StrongId operator++(int) noexcept {
    StrongId old = *this;
    ++value_;
    return old;
  }
  constexpr StrongId& operator--() noexcept {
    --value_;
    return *this;
  }
  constexpr StrongId operator--(int) noexcept {
    StrongId old = *this;
    --value_;
    return old;
  }
  /// The successor id (handy where a mutating ++ would be awkward).
  constexpr StrongId next() const noexcept {
    return StrongId{static_cast<Rep>(value_ + 1)};
  }

  friend constexpr bool operator==(StrongId, StrongId) noexcept = default;
  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

 private:
  static constexpr Rep kInvalid = static_cast<Rep>(-1);
  Rep value_ = kInvalid;
};

/// True for any StrongId instantiation (constrains IndexedVector et al.).
template <class T>
inline constexpr bool is_strong_id_v = false;
template <class Tag, class Rep>
inline constexpr bool is_strong_id_v<StrongId<Tag, Rep>> = true;

/// Ids format as their raw value (diagnostics, error messages, tables).
template <class Tag, class Rep>
std::ostream& operator<<(std::ostream& os, StrongId<Tag, Rep> id) {
  return os << +id.value();  // promote char-sized reps to ints
}

/// Half-open range [first, last) of typed ids, iterable by value:
///
///   for (const FlowId i : id_range(FlowId{0}, flow_count)) ...
template <class Id>
class IdRange {
  static_assert(is_strong_id_v<Id>, "IdRange requires a StrongId");

 public:
  class iterator {
   public:
    using value_type = Id;
    using difference_type = std::ptrdiff_t;

    constexpr iterator() noexcept = default;
    constexpr explicit iterator(Id at) noexcept : at_(at) {}
    constexpr Id operator*() const noexcept { return at_; }
    constexpr iterator& operator++() noexcept {
      ++at_;
      return *this;
    }
    constexpr iterator operator++(int) noexcept {
      iterator old = *this;
      ++at_;
      return old;
    }
    friend constexpr bool operator==(iterator, iterator) noexcept = default;

   private:
    Id at_{};
  };

  constexpr IdRange(Id first, Id last) noexcept : first_(first), last_(last) {}
  constexpr iterator begin() const noexcept { return iterator{first_}; }
  constexpr iterator end() const noexcept { return iterator{last_}; }
  constexpr bool empty() const noexcept { return !(first_ < last_); }

 private:
  Id first_;
  Id last_;
};

/// Range [first, last).
template <class Id>
constexpr IdRange<Id> id_range(Id first, Id last) noexcept {
  return IdRange<Id>(first, last);
}

/// Range [0, count) for a raw element count.
template <class Id>
constexpr IdRange<Id> id_range(std::size_t count) noexcept {
  return IdRange<Id>(Id{0},
                     Id{static_cast<typename Id::rep_type>(count)});
}

/// Overflow-checked construction of a typed id from an untyped quantity
/// (usually a container size); the id-domain analogue of checked_cast.
template <class Id, class From>
constexpr Id checked_cast_id(From value, const char* context = "id value") {
  static_assert(is_strong_id_v<Id>, "checked_cast_id targets a StrongId");
  return Id{checked_cast<typename Id::rep_type>(value, context)};
}

}  // namespace ppdc

/// StrongIds hash as their raw value (unordered containers of ids).
template <class Tag, class Rep>
struct std::hash<ppdc::StrongId<Tag, Rep>> {
  std::size_t operator()(ppdc::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
