#include "util/require.hpp"

#include <sstream>

namespace ppdc::detail {

void throw_requirement_failed(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw PpdcError(os.str());
}

}  // namespace ppdc::detail
