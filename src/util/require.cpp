#include "util/require.hpp"

#include <sstream>

namespace ppdc::detail {

void throw_requirement_failed(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw PpdcError(os.str());
}

namespace {

template <class V>
[[noreturn]] void throw_narrowing(V value, const char* context) {
  std::ostringstream os;
  os << "narrowing overflow: " << context << " " << value
     << " is not representable in the target integer type";
  throw PpdcError(os.str());
}

}  // namespace

void throw_narrowing_failed(long long value, const char* context) {
  throw_narrowing(value, context);
}

void throw_narrowing_failed(unsigned long long value, const char* context) {
  throw_narrowing(value, context);
}

}  // namespace ppdc::detail
