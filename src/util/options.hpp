// Minimal command-line option parsing for benches and examples.
//
// Supports `--key=value` and `--key value` pairs plus boolean `--flag`.
// Unknown keys are rejected so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ppdc {

/// Parsed command-line options with typed accessors and defaults.
class Options {
 public:
  /// Parses argv; throws PpdcError on malformed input.
  static Options parse(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys observed on the command line (for --help style listings).
  std::vector<std::string> keys() const;

  /// Throws if any provided key is outside `allowed`.
  void restrict_to(const std::vector<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace ppdc
