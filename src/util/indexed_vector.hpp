// A std::vector whose operator[] only accepts one StrongId domain.
//
// IndexedVector<Id, T> is the container side of the index-safety layer
// (util/strong_id.hpp): a dense array whose subscript *type* encodes which
// index domain is allowed in, so handing it a row from the wrong universe
// is a compile error instead of silent garbage. Release builds compile to
// exactly a std::vector subscript; debug / sanitizer builds (or any TU
// defining PPDC_CHECK_IDS) bounds-check every access through the library's
// usual PpdcError contract.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/require.hpp"
#include "util/strong_id.hpp"

// Bounds-check policy: on whenever assertions are (debug builds), or when
// a TU opts in explicitly before including this header.
#if !defined(PPDC_CHECK_IDS) && !defined(NDEBUG)
#define PPDC_CHECK_IDS 1
#endif

namespace ppdc {

template <class Id, class T>
class IndexedVector {
  static_assert(is_strong_id_v<Id>,
                "IndexedVector must be indexed by a StrongId domain type");

 public:
  using id_type = Id;
  using value_type = T;
  using iterator = typename std::vector<T>::iterator;
  using const_iterator = typename std::vector<T>::const_iterator;

  IndexedVector() = default;
  explicit IndexedVector(std::size_t count) : data_(count) {}
  IndexedVector(std::size_t count, const T& value) : data_(count, value) {}
  /// Adopts an existing vector whose positions are already in `Id` order.
  explicit IndexedVector(std::vector<T> data) : data_(std::move(data)) {}

  /// Typed subscript; bounds-checked in debug builds.
  T& operator[](Id id) {
#if PPDC_CHECK_IDS
    check(id);
#endif
    return data_[raw_index(id)];
  }
  const T& operator[](Id id) const {
#if PPDC_CHECK_IDS
    check(id);
#endif
    return data_[raw_index(id)];
  }

  /// Always-checked subscript (API-misuse guard on release hot paths too).
  T& at(Id id) {
    check(id);
    return data_[raw_index(id)];
  }
  const T& at(Id id) const {
    check(id);
    return data_[raw_index(id)];
  }

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// One-past-the-last valid id (the typed size).
  Id end_id() const noexcept {
    return Id{static_cast<typename Id::rep_type>(data_.size())};
  }
  /// True when `id` subscripts this container.
  bool contains(Id id) const noexcept {
    return id.valid() && raw_index(id) < data_.size();
  }
  /// Iterable range of every valid id, in order.
  IdRange<Id> ids() const noexcept { return id_range<Id>(data_.size()); }

  /// Appends a value and returns the id it received.
  Id push_back(T value) {
    data_.push_back(std::move(value));
    return Id{static_cast<typename Id::rep_type>(data_.size() - 1)};
  }
  template <class... Args>
  Id emplace_back(Args&&... args) {
    data_.emplace_back(std::forward<Args>(args)...);
    return Id{static_cast<typename Id::rep_type>(data_.size() - 1)};
  }

  void assign(std::size_t count, const T& value) { data_.assign(count, value); }
  void resize(std::size_t count) { data_.resize(count); }
  void resize(std::size_t count, const T& value) { data_.resize(count, value); }
  void reserve(std::size_t count) { data_.reserve(count); }
  void clear() noexcept { data_.clear(); }

  // Element iteration (ids() iterates the index domain instead).
  iterator begin() noexcept { return data_.begin(); }
  iterator end() noexcept { return data_.end(); }
  const_iterator begin() const noexcept { return data_.begin(); }
  const_iterator end() const noexcept { return data_.end(); }

  T& front() { return data_.front(); }
  const T& front() const { return data_.front(); }
  T& back() { return data_.back(); }
  const T& back() const { return data_.back(); }

  /// The underlying untyped storage (interop with raw-vector APIs).
  const std::vector<T>& raw() const noexcept { return data_; }
  std::vector<T>&& take() noexcept { return std::move(data_); }

  friend bool operator==(const IndexedVector&, const IndexedVector&) = default;

 private:
  static std::size_t raw_index(Id id) noexcept {
    using Unsigned = std::make_unsigned_t<typename Id::rep_type>;
    return static_cast<std::size_t>(static_cast<Unsigned>(id.value()));
  }

  void check(Id id) const {
    PPDC_REQUIRE(id.valid() && raw_index(id) < data_.size(),
                 "index " + std::to_string(+id.value()) +
                     " outside [0, " + std::to_string(data_.size()) + ")");
  }

  std::vector<T> data_;
};

}  // namespace ppdc
