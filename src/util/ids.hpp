// The library's index-domain map: one StrongId tag per integer domain.
//
// Graph node ids (ppdc::NodeId, graph/graph.hpp) stay a raw dense integer
// — they are the currency every subsystem exchanges and topology builders
// compute them arithmetically. Every *derived* index space layered on top
// of NodeId is strongly typed here, so a row of one universe can never be
// used to subscript another (see DESIGN.md "Index-domain map"):
//
//   FlowId        position in a workload's flow vector (std::vector<VmFlow>
//                 and every parallel per-flow array: rates, groups, base
//                 vectors, endpoint snapshots).
//   SwitchIdx     position in Graph::switches() — the full-fabric switch
//                 universe (fault processes, per-switch bookkeeping).
//   CandidateIdx  row in a *solver's* candidate universe: the order of
//                 CostModel::placement_candidates(), StrollTable's DP rows,
//                 the branch-and-bound candidate tables, and the column
//                 order of chain-search `extra` matrices. On a pristine
//                 fabric this universe equals Graph::switches(); on a
//                 degraded one it is the alive serving core — which is why
//                 it must not be confused with SwitchIdx or NodeId.
//   ChainPos      VNF position j within one SFC (0-based; the paper's
//                 f_{j+1}); indexes placements, migration paths and the
//                 rows of chain-search `extra` matrices.
//   Hour          simulation hour / epoch of the dynamic model (diurnal
//                 schedule, fault timeline, per-epoch traces).
//   RackIdx       rack number within a Topology (rows of Topology::racks /
//                 rack_switches — the domain of the out-of-bounds rack
//                 index PR 2's sanitizer run caught).
#pragma once

#include <cstdint>

#include "util/strong_id.hpp"

namespace ppdc {

using FlowId = StrongId<struct FlowIdTag, std::int32_t>;
using SwitchIdx = StrongId<struct SwitchIdxTag, std::int32_t>;
using CandidateIdx = StrongId<struct CandidateIdxTag, std::int32_t>;
using ChainPos = StrongId<struct ChainPosTag, std::int32_t>;
using Hour = StrongId<struct HourTag, std::int32_t>;
using RackIdx = StrongId<struct RackIdxTag, std::int32_t>;

}  // namespace ppdc
