#include "graph/graph.hpp"

#include <algorithm>
#include <vector>

namespace ppdc {

NodeId Graph::add_node(NodeKind kind, std::string label) {
  const NodeId id = num_nodes();
  kind_.push_back(kind);
  if (label.empty()) {
    label = (kind == NodeKind::kHost ? "h" : "s") + std::to_string(id);
  }
  labels_.push_back(std::move(label));
  adj_.emplace_back();
  (kind == NodeKind::kHost ? hosts_ : switches_).push_back(id);
  return id;
}

void Graph::add_edge(NodeId u, NodeId v, double w) {
  check_node(u);
  check_node(v);
  PPDC_REQUIRE(u != v, "self loops are not allowed");
  PPDC_REQUIRE(w > 0.0, "edge weight must be positive");
  PPDC_REQUIRE(!has_edge(u, v), "parallel edge " + label(u) + "-" + label(v));
  adj_[static_cast<std::size_t>(u)].push_back({v, w});
  adj_[static_cast<std::size_t>(v)].push_back({u, w});
  ++edge_count_;
}

void Graph::set_edge_weight(NodeId u, NodeId v, double w) {
  check_node(u);
  check_node(v);
  PPDC_REQUIRE(w > 0.0, "edge weight must be positive");
  bool found = false;
  for (auto& a : adj_[static_cast<std::size_t>(u)]) {
    if (a.to == v) {
      a.weight = w;
      found = true;
    }
  }
  for (auto& a : adj_[static_cast<std::size_t>(v)]) {
    if (a.to == u) a.weight = w;
  }
  PPDC_REQUIRE(found, "set_edge_weight: edge does not exist");
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& nu = adj_[static_cast<std::size_t>(u)];
  return std::any_of(nu.begin(), nu.end(),
                     [v](const Adjacency& a) { return a.to == v; });
}

double Graph::edge_weight(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (const auto& a : adj_[static_cast<std::size_t>(u)]) {
    if (a.to == v) return a.weight;
  }
  throw PpdcError("edge_weight: edge does not exist");
}

bool Graph::is_connected() const {
  if (num_nodes() == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(num_nodes()), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const auto& a : adj_[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = 1;
        ++visited;
        stack.push_back(a.to);
      }
    }
  }
  return visited == static_cast<std::size_t>(num_nodes());
}

double Graph::total_edge_weight() const noexcept {
  double sum = 0.0;
  for (const auto& nbrs : adj_) {
    for (const auto& a : nbrs) sum += a.weight;
  }
  return sum / 2.0;
}

Graph masked_copy(const Graph& g, const std::vector<char>& dead_node,
                  const std::vector<EdgeKey>& dead_edges) {
  PPDC_REQUIRE(dead_node.size() == static_cast<std::size_t>(g.num_nodes()),
               "dead-node mask must have one entry per node");
  for (const auto& [u, v] : dead_edges) {
    PPDC_REQUIRE(u < v, "dead edges must be normalized (u < v)");
    PPDC_REQUIRE(g.has_edge(u, v), "dead edge does not exist in the graph");
  }
  Graph out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out.add_node(g.kind(v), g.label(v));
  }
  const auto edge_dead = [&](NodeId u, NodeId v) {
    const EdgeKey key = make_edge_key(u, v);
    return std::find(dead_edges.begin(), dead_edges.end(), key) !=
           dead_edges.end();
  };
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (dead_node[static_cast<std::size_t>(u)]) continue;
    for (const auto& a : g.neighbors(u)) {
      if (u >= a.to) continue;  // each undirected edge once
      if (dead_node[static_cast<std::size_t>(a.to)]) continue;
      if (edge_dead(u, a.to)) continue;
      out.add_edge(u, a.to, a.weight);
    }
  }
  return out;
}

std::vector<int> connected_components(const Graph& g) {
  std::vector<int> comp(static_cast<std::size_t>(g.num_nodes()), -1);
  int next = 0;
  std::vector<NodeId> queue;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (comp[static_cast<std::size_t>(start)] != -1) continue;
    const int id = next++;
    comp[static_cast<std::size_t>(start)] = id;
    queue.assign(1, start);
    while (!queue.empty()) {
      const NodeId u = queue.back();
      queue.pop_back();
      for (const auto& a : g.neighbors(u)) {
        if (comp[static_cast<std::size_t>(a.to)] == -1) {
          comp[static_cast<std::size_t>(a.to)] = id;
          queue.push_back(a.to);
        }
      }
    }
  }
  return comp;
}

}  // namespace ppdc
