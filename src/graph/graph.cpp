#include "graph/graph.hpp"

#include <algorithm>
#include <vector>

namespace ppdc {

NodeId Graph::add_node(NodeKind kind, std::string label) {
  const NodeId id = num_nodes();
  kind_.push_back(kind);
  if (label.empty()) {
    label = (kind == NodeKind::kHost ? "h" : "s") + std::to_string(id);
  }
  labels_.push_back(std::move(label));
  adj_.emplace_back();
  (kind == NodeKind::kHost ? hosts_ : switches_).push_back(id);
  return id;
}

void Graph::add_edge(NodeId u, NodeId v, double w) {
  check_node(u);
  check_node(v);
  PPDC_REQUIRE(u != v, "self loops are not allowed");
  PPDC_REQUIRE(w > 0.0, "edge weight must be positive");
  PPDC_REQUIRE(!has_edge(u, v), "parallel edge " + label(u) + "-" + label(v));
  adj_[static_cast<std::size_t>(u)].push_back({v, w});
  adj_[static_cast<std::size_t>(v)].push_back({u, w});
  ++edge_count_;
}

void Graph::set_edge_weight(NodeId u, NodeId v, double w) {
  check_node(u);
  check_node(v);
  PPDC_REQUIRE(w > 0.0, "edge weight must be positive");
  bool found = false;
  for (auto& a : adj_[static_cast<std::size_t>(u)]) {
    if (a.to == v) {
      a.weight = w;
      found = true;
    }
  }
  for (auto& a : adj_[static_cast<std::size_t>(v)]) {
    if (a.to == u) a.weight = w;
  }
  PPDC_REQUIRE(found, "set_edge_weight: edge does not exist");
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& nu = adj_[static_cast<std::size_t>(u)];
  return std::any_of(nu.begin(), nu.end(),
                     [v](const Adjacency& a) { return a.to == v; });
}

double Graph::edge_weight(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (const auto& a : adj_[static_cast<std::size_t>(u)]) {
    if (a.to == v) return a.weight;
  }
  throw PpdcError("edge_weight: edge does not exist");
}

bool Graph::is_connected() const {
  if (num_nodes() == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(num_nodes()), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const auto& a : adj_[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = 1;
        ++visited;
        stack.push_back(a.to);
      }
    }
  }
  return visited == static_cast<std::size_t>(num_nodes());
}

double Graph::total_edge_weight() const noexcept {
  double sum = 0.0;
  for (const auto& nbrs : adj_) {
    for (const auto& a : nbrs) sum += a.weight;
  }
  return sum / 2.0;
}

}  // namespace ppdc
