#include "graph/apsp.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace ppdc {

namespace {

bool all_unit_weights(const Graph& g) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& a : g.neighbors(u)) {
      if (a.weight != 1.0) return false;
    }
  }
  return true;
}

}  // namespace

AllPairs::AllPairs(const Graph& g) : AllPairs(g, /*allow_disconnected=*/false) {}

AllPairs::AllPairs(const Graph& g, bool allow_disconnected)
    : g_(&g), n_(g.num_nodes()) {
  PPDC_REQUIRE(n_ > 0, "empty graph");
  PPDC_REQUIRE(allow_disconnected || g.is_connected(),
               "PPDC graph must be connected");
  const auto n = static_cast<std::size_t>(n_);
  dist_.assign(n * n, kUnreachable);
  parent_.assign(n * n, kInvalidNode);

  const bool unit = all_unit_weights(g);

#if defined(PPDC_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8)
#endif
  for (NodeId src = 0; src < n_; ++src) {
    const SsspResult r =
        unit ? bfs_shortest_paths(g, src) : dijkstra(g, src);
    const std::size_t row = static_cast<std::size_t>(src) * n;
    std::copy(r.dist.begin(), r.dist.end(), dist_.begin() + row);
    std::copy(r.parent.begin(), r.parent.end(),
              parent_.begin() + static_cast<std::ptrdiff_t>(row));
  }

  for (const double d : dist_) {
    if (d == kUnreachable) {
      PPDC_REQUIRE(allow_disconnected, "graph must be connected");
      fully_connected_ = false;
      continue;
    }
    diameter_ = std::max(diameter_, d);
  }
  for (const NodeId a : g.switches()) {
    for (const NodeId b : g.switches()) {
      if (a != b) min_switch_dist_ = std::min(min_switch_dist_, cost(a, b));
    }
  }
  if (min_switch_dist_ == kUnreachable) {
    // Fewer than two switches: no inter-switch hop exists, so the cheapest
    // possible chain hop is 0. Leaving it +inf would blow up every
    // branch-and-bound lower bound that multiplies by it and prune all
    // feasible single-switch chains.
    min_switch_dist_ = 0.0;
  }
}

std::vector<NodeId> AllPairs::path(NodeId u, NodeId v) const {
  PPDC_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_, "node out of range");
  std::vector<NodeId> p;
  const std::size_t row =
      static_cast<std::size_t>(u) * static_cast<std::size_t>(n_);
  for (NodeId cur = v; cur != kInvalidNode;
       cur = parent_[row + static_cast<std::size_t>(cur)]) {
    p.push_back(cur);
    if (cur == u) break;
  }
  PPDC_REQUIRE(!p.empty() && p.back() == u, "broken parent chain");
  std::reverse(p.begin(), p.end());
  return p;
}

int AllPairs::path_length_nodes(NodeId u, NodeId v) const {
  if (u == v) return 1;
  return static_cast<int>(path(u, v).size());
}

bool AllPairs::check_triangle_inequality(int samples,
                                         std::uint64_t seed) const {
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    const NodeId x = static_cast<NodeId>(rng.uniform_int(0, n_ - 1));
    const NodeId y = static_cast<NodeId>(rng.uniform_int(0, n_ - 1));
    const NodeId z = static_cast<NodeId>(rng.uniform_int(0, n_ - 1));
    if (cost(x, z) > cost(x, y) + cost(y, z) + 1e-9) return false;
  }
  return true;
}

}  // namespace ppdc
