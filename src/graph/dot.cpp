#include "graph/dot.hpp"
#include "graph/graph.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace ppdc {

void to_dot(std::ostream& os, const Topology& topo,
            const DotOptions& options) {
  const Graph& g = topo.graph;
  os << "graph \"" << topo.name << "\" {\n"
     << "  layout=neato;\n  overlap=false;\n  node [fontsize=10];\n";

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << " [label=\"" << g.label(v) << "\"";
    if (g.is_host(v)) {
      os << ", shape=box, style=filled, fillcolor=\"#eeeeee\"";
    } else {
      const auto it = std::find(options.placement.begin(),
                                options.placement.end(), v);
      if (it != options.placement.end()) {
        const auto idx = it - options.placement.begin() + 1;
        os << ", shape=ellipse, style=filled, fillcolor=\"#ffd27f\", "
           << "xlabel=\"f" << idx << "\"";
      } else {
        os << ", shape=ellipse";
      }
    }
    os << "];\n";
  }

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& a : g.neighbors(u)) {
      if (u >= a.to) continue;  // one line per undirected edge
      os << "  n" << u << " -- n" << a.to;
      if (options.edge_weights) {
        os << " [label=\"" << std::setprecision(3) << a.weight << "\"]";
      }
      os << ";\n";
    }
  }

  double max_rate = 0.0;
  for (const auto& f : options.flows) max_rate = std::max(max_rate, f.rate);
  for (const auto& f : options.flows) {
    const double width =
        max_rate > 0.0 ? 0.5 + 3.0 * f.rate / max_rate : 1.0;
    os << "  n" << f.src_host << " -- n" << f.dst_host
       << " [style=dashed, color=\"#c04040\", penwidth="
       << std::setprecision(3) << width << "];\n";
  }
  os << "}\n";
}

}  // namespace ppdc
