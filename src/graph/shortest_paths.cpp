#include "graph/shortest_paths.hpp"

#include <algorithm>
#include <deque>
#include <queue>

namespace ppdc {

SsspResult bfs_shortest_paths(const Graph& g, NodeId source, double unit) {
  PPDC_REQUIRE(source >= 0 && source < g.num_nodes(), "bad source");
  PPDC_REQUIRE(unit > 0.0, "unit must be positive");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  SsspResult r{std::vector<double>(n, kUnreachable),
               std::vector<NodeId>(n, kInvalidNode)};
  std::deque<NodeId> q;
  r.dist[static_cast<std::size_t>(source)] = 0.0;
  q.push_back(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop_front();
    const double du = r.dist[static_cast<std::size_t>(u)];
    for (const auto& a : g.neighbors(u)) {
      auto& dv = r.dist[static_cast<std::size_t>(a.to)];
      if (dv == kUnreachable) {
        dv = du + unit;
        r.parent[static_cast<std::size_t>(a.to)] = u;
        q.push_back(a.to);
      }
    }
  }
  return r;
}

SsspResult dijkstra(const Graph& g, NodeId source) {
  PPDC_REQUIRE(source >= 0 && source < g.num_nodes(), "bad source");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  SsspResult r{std::vector<double>(n, kUnreachable),
               std::vector<NodeId>(n, kInvalidNode)};
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  r.dist[static_cast<std::size_t>(source)] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [du, u] = pq.top();
    pq.pop();
    if (du > r.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const auto& a : g.neighbors(u)) {
      const double cand = du + a.weight;
      auto& dv = r.dist[static_cast<std::size_t>(a.to)];
      if (cand < dv) {
        dv = cand;
        r.parent[static_cast<std::size_t>(a.to)] = u;
        pq.emplace(cand, a.to);
      }
    }
  }
  return r;
}

std::vector<NodeId> reconstruct_path(const SsspResult& sp, NodeId source,
                                     NodeId target) {
  PPDC_REQUIRE(target >= 0 &&
                   static_cast<std::size_t>(target) < sp.dist.size(),
               "bad target");
  if (sp.dist[static_cast<std::size_t>(target)] == kUnreachable) return {};
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode;
       v = sp.parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == source) break;
  }
  PPDC_REQUIRE(!path.empty() && path.back() == source,
               "parent chain does not reach the source");
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace ppdc
