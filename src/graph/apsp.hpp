// All-pairs shortest paths over the PPDC graph.
//
// Everything in the paper's cost model is expressed through c(u,v), the
// shortest-path cost between two devices (§III, Table I). AllPairs
// precomputes the full distance matrix once per topology (OpenMP-parallel
// across sources) and serves c(u,v) in O(1) plus shortest-path vertex
// sequences for migration frontiers.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"

namespace ppdc {

/// Precomputed all-pairs shortest path distances and parents.
class AllPairs {
 public:
  /// Runs one SSSP per vertex. Uses BFS when every edge weight equals 1
  /// (hop metric) and Dijkstra otherwise. Requires a connected graph.
  explicit AllPairs(const Graph& g);

  /// As above, but `allow_disconnected = true` accepts graphs with
  /// unreachable pairs (a fabric degraded by switch/link failures):
  /// cost(u,v) is kUnreachable (+inf) for such pairs, reachable() reports
  /// them, and diameter()/min_switch_distance() range over reachable pairs
  /// only. path() still throws on unreachable pairs.
  AllPairs(const Graph& g, bool allow_disconnected);

  /// Shortest-path cost c(u,v). O(1).
  double cost(NodeId u, NodeId v) const {
    return dist_[index(u, v)];
  }

  /// Contiguous row c(u, ·) of the distance matrix, indexed by NodeId.
  /// The flat hot kernels (stroll-DP metric closure, chain-search candidate
  /// tables, cost-model attraction rebuilds) stream rows through this
  /// pointer instead of paying a bounds check per cost() element.
  const double* cost_row(NodeId u) const {
    PPDC_REQUIRE(u >= 0 && u < n_, "node out of range");
    return dist_.data() +
           static_cast<std::size_t>(u) * static_cast<std::size_t>(n_);
  }

  /// True when a path u -> v exists (always true in connected mode).
  bool reachable(NodeId u, NodeId v) const {
    return dist_[index(u, v)] != kUnreachable;
  }

  /// True when every pair is reachable.
  bool fully_connected() const noexcept { return fully_connected_; }

  /// Shortest-path vertex sequence u -> v (inclusive of both endpoints).
  std::vector<NodeId> path(NodeId u, NodeId v) const;

  /// Number of vertices on the shortest path from u to v, i.e. the h_j of
  /// Definition 1 (1 when u == v).
  int path_length_nodes(NodeId u, NodeId v) const;

  /// Graph diameter: max over all pairs of cost(u,v).
  double diameter() const noexcept { return diameter_; }

  /// Smallest positive switch-to-switch distance (branch-and-bound lower
  /// bounds use this as the cheapest possible chain hop). 0 on topologies
  /// with fewer than two switches, where no inter-switch hop exists.
  double min_switch_distance() const noexcept { return min_switch_dist_; }

  NodeId num_nodes() const noexcept { return n_; }

  const Graph& graph() const noexcept { return *g_; }

  /// True if the metric satisfies the triangle inequality for all sampled
  /// triples (it always should — shortest-path metrics are metrics; this is
  /// exposed for property tests).
  bool check_triangle_inequality(int samples, std::uint64_t seed) const;

 private:
  std::size_t index(NodeId u, NodeId v) const {
    PPDC_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_, "node out of range");
    return static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(v);
  }

  const Graph* g_;
  NodeId n_ = 0;
  std::vector<double> dist_;    ///< row-major n x n
  std::vector<NodeId> parent_;  ///< parent_[u*n+v]: predecessor of v on u->v
  double diameter_ = 0.0;
  double min_switch_dist_ = kUnreachable;
  bool fully_connected_ = true;
};

}  // namespace ppdc
