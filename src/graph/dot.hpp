// Graphviz DOT export of PPDC topologies, placements and flows — for
// inspecting what the algorithms actually did ("dot -Tsvg out.dot").
#pragma once

#include <iosfwd>
#include <vector>

#include "core/cost_model.hpp"
#include "topology/topology.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

/// Rendering options for to_dot.
struct DotOptions {
  /// Switches currently hosting VNFs, highlighted and labelled f1..fn in
  /// placement order.
  Placement placement;
  /// Flows drawn as dashed host-to-host edges, penwidth scaled by rate.
  std::vector<VmFlow> flows;
  /// Show edge weights on fabric links.
  bool edge_weights = false;
};

/// Writes the topology (hosts = boxes, switches = ellipses, VNF-carrying
/// switches filled) as an undirected DOT graph.
void to_dot(std::ostream& os, const Topology& topo,
            const DotOptions& options = {});

}  // namespace ppdc
