// Undirected weighted graph model of a policy-preserving data center (PPDC).
//
// Matches the paper's system model (§III): V = V_h ∪ V_s, where hosts are
// leaves that store VMs and every switch has an attached server able to run
// VNFs. Edges carry a non-negative weight w(u,v) — network delay or energy
// cost per unit of VM communication / VNF migration.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace ppdc {

/// Dense vertex identifier; indices into Graph storage.
using NodeId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// Role of a vertex in the PPDC.
enum class NodeKind : std::uint8_t {
  kHost,    ///< stores VMs (V_h)
  kSwitch,  ///< has an attached server that can run one VNF (V_s)
};

/// A half-edge in the adjacency list.
struct Adjacency {
  NodeId to = kInvalidNode;
  double weight = 1.0;
};

/// Mutable undirected weighted multigraph with typed vertices.
///
/// Parallel edges are rejected (a data center link is unique between two
/// devices); self loops are rejected. Node labels are optional and used
/// only for diagnostics and example output.
class Graph {
 public:
  /// Adds a vertex of the given kind; returns its id.
  NodeId add_node(NodeKind kind, std::string label = {});

  /// Adds an undirected edge with weight `w` (> 0).
  void add_edge(NodeId u, NodeId v, double w = 1.0);

  /// Updates the weight of an existing edge (both directions).
  void set_edge_weight(NodeId u, NodeId v, double w);

  NodeId num_nodes() const {
    return checked_cast<NodeId>(kind_.size(), "node count");
  }
  std::size_t num_edges() const noexcept { return edge_count_; }

  NodeKind kind(NodeId v) const {
    check_node(v);
    return kind_[static_cast<std::size_t>(v)];
  }
  bool is_switch(NodeId v) const { return kind(v) == NodeKind::kSwitch; }
  bool is_host(NodeId v) const { return kind(v) == NodeKind::kHost; }

  const std::string& label(NodeId v) const {
    check_node(v);
    return labels_[static_cast<std::size_t>(v)];
  }

  std::span<const Adjacency> neighbors(NodeId v) const {
    check_node(v);
    return adj_[static_cast<std::size_t>(v)];
  }

  /// Degree of vertex v.
  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  /// All host vertices, in id order.
  const std::vector<NodeId>& hosts() const noexcept { return hosts_; }
  /// All switch vertices, in id order.
  const std::vector<NodeId>& switches() const noexcept { return switches_; }

  /// True if an edge u-v exists.
  bool has_edge(NodeId u, NodeId v) const;

  /// Weight of edge u-v; throws if absent.
  double edge_weight(NodeId u, NodeId v) const;

  /// True when every vertex can reach every other vertex.
  bool is_connected() const;

  /// Sum of all edge weights (each undirected edge counted once).
  double total_edge_weight() const noexcept;

 private:
  void check_node(NodeId v) const {
    PPDC_REQUIRE(v >= 0 && v < num_nodes(), "node id out of range");
  }

  std::vector<NodeKind> kind_;
  std::vector<std::string> labels_;
  std::vector<std::vector<Adjacency>> adj_;
  std::vector<NodeId> hosts_;
  std::vector<NodeId> switches_;
  std::size_t edge_count_ = 0;
};

/// An undirected link identified by its endpoints (normalized u < v).
using EdgeKey = std::pair<NodeId, NodeId>;

/// Normalizes an edge to (min, max) endpoint order.
inline EdgeKey make_edge_key(NodeId u, NodeId v) {
  return u < v ? EdgeKey{u, v} : EdgeKey{v, u};
}

/// Copy of `g` with the flagged nodes isolated (every incident link
/// dropped) and the listed links removed. Node ids, kinds and labels are
/// preserved, so flow endpoints and placements remain addressable; the
/// result may be disconnected (pair it with the allow-disconnected
/// AllPairs mode). `dead_node` must have one entry per node; `dead_edges`
/// entries must be normalized (u < v) and name existing links of `g`.
Graph masked_copy(const Graph& g, const std::vector<char>& dead_node,
                  const std::vector<EdgeKey>& dead_edges);

/// Connected-component id per node (dense, 0-based, assigned in BFS order
/// from the lowest-id unvisited node — deterministic).
std::vector<int> connected_components(const Graph& g);

}  // namespace ppdc
