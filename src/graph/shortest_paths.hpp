// Single-source shortest paths: BFS for unit-weight graphs, Dijkstra for
// weighted graphs. Both return distances and parent pointers so that the
// actual vertex sequence of a shortest path (needed for VNF migration
// frontiers, Def. 1) can be reconstructed.
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace ppdc {

/// Distance value representing "unreachable".
inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Result of a single-source shortest-path computation.
struct SsspResult {
  std::vector<double> dist;    ///< dist[v], kUnreachable if no path
  std::vector<NodeId> parent;  ///< predecessor on a shortest path, or -1
};

/// Breadth-first shortest paths treating every edge as weight `unit`
/// (hop-count metric, used by the unweighted PPDC experiments).
SsspResult bfs_shortest_paths(const Graph& g, NodeId source,
                              double unit = 1.0);

/// Dijkstra with a binary heap; edge weights must be positive.
SsspResult dijkstra(const Graph& g, NodeId source);

/// Reconstructs the vertex sequence source -> target from parent pointers.
/// Returns an empty vector when target is unreachable.
std::vector<NodeId> reconstruct_path(const SsspResult& sp, NodeId source,
                                     NodeId target);

}  // namespace ppdc
