#include "flow/min_cost_flow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace ppdc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MinCostFlow::MinCostFlow(int num_nodes) : n_(num_nodes) {
  PPDC_REQUIRE(num_nodes > 0, "network needs at least one node");
  graph_.resize(static_cast<std::size_t>(num_nodes));
}

int MinCostFlow::add_arc(int u, int v, std::int64_t capacity, double cost) {
  PPDC_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_, "arc endpoint range");
  PPDC_REQUIRE(capacity >= 0, "negative capacity");
  if (cost < 0.0) has_negative_cost_ = true;
  auto& fu = graph_[static_cast<std::size_t>(u)];
  auto& fv = graph_[static_cast<std::size_t>(v)];
  fu.push_back(Arc{v, capacity, cost, static_cast<int>(fv.size())});
  fv.push_back(Arc{u, 0, -cost, static_cast<int>(fu.size()) - 1});
  const int id = static_cast<int>(arc_locator_.size());
  arc_locator_.emplace_back(u, static_cast<int>(fu.size()) - 1);
  initial_cap_.push_back(capacity);
  return id;
}

MinCostFlow::Result MinCostFlow::solve(int source, int sink,
                                       std::int64_t max_flow) {
  PPDC_REQUIRE(source >= 0 && source < n_ && sink >= 0 && sink < n_,
               "source/sink range");
  PPDC_REQUIRE(source != sink, "source == sink");

  std::vector<double> potential(static_cast<std::size_t>(n_), 0.0);

  // Bellman-Ford to initialize potentials when negative costs exist.
  if (has_negative_cost_) {
    std::vector<double> dist(static_cast<std::size_t>(n_), kInf);
    dist[static_cast<std::size_t>(source)] = 0.0;
    for (int iter = 0; iter < n_; ++iter) {
      bool changed = false;
      for (int u = 0; u < n_; ++u) {
        const double du = dist[static_cast<std::size_t>(u)];
        if (du == kInf) continue;
        for (const Arc& a : graph_[static_cast<std::size_t>(u)]) {
          if (a.cap <= 0) continue;
          if (du + a.cost < dist[static_cast<std::size_t>(a.to)] - 1e-12) {
            dist[static_cast<std::size_t>(a.to)] = du + a.cost;
            changed = true;
            PPDC_REQUIRE(iter + 1 < n_, "negative cycle detected");
          }
        }
      }
      if (!changed) break;
    }
    for (int v = 0; v < n_; ++v) {
      if (dist[static_cast<std::size_t>(v)] != kInf) {
        potential[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(v)];
      }
    }
  }

  Result result;
  std::vector<double> dist(static_cast<std::size_t>(n_));
  std::vector<int> prev_node(static_cast<std::size_t>(n_));
  std::vector<int> prev_arc(static_cast<std::size_t>(n_));

  while (result.flow < max_flow) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    dist[static_cast<std::size_t>(source)] = 0.0;
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, source);
    while (!pq.empty()) {
      const auto [du, u] = pq.top();
      pq.pop();
      if (du > dist[static_cast<std::size_t>(u)] + 1e-12) continue;
      const auto& arcs = graph_[static_cast<std::size_t>(u)];
      for (int i = 0; i < static_cast<int>(arcs.size()); ++i) {
        const Arc& a = arcs[static_cast<std::size_t>(i)];
        if (a.cap <= 0) continue;
        // True reduced costs are non-negative; floating-point cancellation
        // in cost + π(u) - π(v) can leave a tiny negative residue that
        // would form spurious negative cycles and stall Dijkstra, so clamp.
        const double step =
            std::max(0.0, a.cost + potential[static_cast<std::size_t>(u)] -
                              potential[static_cast<std::size_t>(a.to)]);
        const double reduced = du + step;
        if (reduced < dist[static_cast<std::size_t>(a.to)] - 1e-12) {
          dist[static_cast<std::size_t>(a.to)] = reduced;
          prev_node[static_cast<std::size_t>(a.to)] = u;
          prev_arc[static_cast<std::size_t>(a.to)] = i;
          pq.emplace(reduced, a.to);
        }
      }
    }
    if (dist[static_cast<std::size_t>(sink)] == kInf) break;  // saturated

    for (int v = 0; v < n_; ++v) {
      if (dist[static_cast<std::size_t>(v)] != kInf) {
        potential[static_cast<std::size_t>(v)] +=
            dist[static_cast<std::size_t>(v)];
      }
    }

    // Bottleneck along the augmenting path.
    std::int64_t push = max_flow - result.flow;
    for (int v = sink; v != source;
         v = prev_node[static_cast<std::size_t>(v)]) {
      const Arc& a =
          graph_[static_cast<std::size_t>(
              prev_node[static_cast<std::size_t>(v)])]
                [static_cast<std::size_t>(prev_arc[static_cast<std::size_t>(v)])];
      push = std::min(push, a.cap);
    }
    // Apply augmentation.
    for (int v = sink; v != source;
         v = prev_node[static_cast<std::size_t>(v)]) {
      const int u = prev_node[static_cast<std::size_t>(v)];
      Arc& a = graph_[static_cast<std::size_t>(u)]
                     [static_cast<std::size_t>(
                          prev_arc[static_cast<std::size_t>(v)])];
      a.cap -= push;
      graph_[static_cast<std::size_t>(a.to)][static_cast<std::size_t>(a.rev)]
          .cap += push;
      result.cost += a.cost * static_cast<double>(push);
    }
    result.flow += push;
  }
  return result;
}

std::int64_t MinCostFlow::flow_on(int arc_id) const {
  PPDC_REQUIRE(arc_id >= 0 &&
                   arc_id < static_cast<int>(arc_locator_.size()),
               "bad arc id");
  const auto [u, idx] = arc_locator_[static_cast<std::size_t>(arc_id)];
  const Arc& a =
      graph_[static_cast<std::size_t>(u)][static_cast<std::size_t>(idx)];
  return initial_cap_[static_cast<std::size_t>(arc_id)] - a.cap;
}

}  // namespace ppdc
