// Minimum-cost maximum-flow solver.
//
// Substrate for the MCF VM-migration baseline (Flores et al., INFOCOM 2020
// [24]), which casts "which VM moves to which host" as a transportation
// problem. Implementation: successive shortest augmenting paths with
// Johnson potentials — Bellman-Ford once to admit negative edge costs,
// Dijkstra with reduced costs afterwards. Exact on integer capacities.
#pragma once

#include <cstdint>
#include <vector>

#include "util/require.hpp"

namespace ppdc {

/// Min-cost max-flow network on dense integer vertex ids.
class MinCostFlow {
 public:
  /// Creates a network with `num_nodes` vertices.
  explicit MinCostFlow(int num_nodes);

  /// Adds a directed arc u -> v; returns the arc id (for flow queries).
  /// Capacity must be >= 0. Costs may be negative (no negative cycles).
  int add_arc(int u, int v, std::int64_t capacity, double cost);

  /// Result of a solve: achieved flow value and its total cost.
  struct Result {
    std::int64_t flow = 0;
    double cost = 0.0;
  };

  /// Sends up to `max_flow` units from `source` to `sink` at minimum cost.
  /// Pass max_flow = kInfiniteFlow for a full max-flow computation.
  Result solve(int source, int sink,
               std::int64_t max_flow = kInfiniteFlow);

  /// Flow currently routed on arc `arc_id` (after solve()).
  std::int64_t flow_on(int arc_id) const;

  static constexpr std::int64_t kInfiniteFlow =
      std::int64_t{1} << 62;

 private:
  struct Arc {
    int to;
    std::int64_t cap;
    double cost;
    int rev;  ///< index of the reverse arc in graph_[to]
  };

  int n_;
  std::vector<std::vector<Arc>> graph_;
  /// (node, index) locator for each externally added arc.
  std::vector<std::pair<int, int>> arc_locator_;
  std::vector<std::int64_t> initial_cap_;
  bool has_negative_cost_ = false;
};

}  // namespace ppdc
