#include "fault/fault.hpp"

#include <algorithm>
#include <string>

#include "util/indexed_vector.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/strong_id.hpp"

namespace ppdc {

namespace {

/// File-local index domain: rows of the sorted fabric-link universe built
/// by generate_fault_schedule.
struct LinkIdxTag {};
using LinkIdx = StrongId<LinkIdxTag>;

/// A mean of 0 or >= 1 epoch; (0,1) would demand a per-epoch probability
/// above 1 — rejected by name instead of silently clamped (a config that
/// asks for sub-epoch sojourns is a bug, not a certainty request).
void validate_mean(const char* field, double mean) {
  PPDC_REQUIRE(mean >= 0.0,
               std::string(field) + " must be non-negative, got " +
                   std::to_string(mean));
  PPDC_REQUIRE(
      mean == 0.0 || mean >= 1.0,
      std::string(field) + " of " + std::to_string(mean) +
          " epochs is in (0,1): the per-epoch probability 1/" + field +
          " would exceed 1 — use 0 to disable or a mean of at least one "
          "epoch");
}

/// Per-epoch transition probability of a geometric sojourn with mean
/// `mean_epochs` (validated 0 or >= 1, so no clamping is needed). A mean
/// of 0 disables the transition.
double per_epoch_prob(double mean_epochs) {
  if (mean_epochs <= 0.0) return 0.0;
  return 1.0 / mean_epochs;
}

void validate_config(const FaultScheduleConfig& config) {
  PPDC_REQUIRE(config.hours >= 1, "fault schedule needs at least one epoch");
  validate_mean("switch_mtbf", config.switch_mtbf);
  validate_mean("switch_mttr", config.switch_mttr);
  validate_mean("link_mtbf", config.link_mtbf);
  validate_mean("link_mttr", config.link_mttr);
  validate_mean("domain_mtbf", config.domain_mtbf);
  validate_mean("domain_mttr", config.domain_mttr);
  validate_mean("flap_mtbf", config.flap_mtbf);
  PPDC_REQUIRE(config.cascade_prob >= 0.0 && config.cascade_prob <= 1.0,
               "cascade_prob must be a probability in [0,1]");
  PPDC_REQUIRE(config.flap_mtbf == 0.0 || config.flap_cycles >= 1,
               "flap_cycles must be >= 1 when flapping is enabled");
}

/// Which process currently holds a switch down — its repair discipline.
/// Domain-outage victims return together on one draw; maintenance
/// victims return at the window's fixed end; independent (and cascade)
/// victims each run their own geometric repair.
enum class Owner : std::uint8_t { kNone, kIndependent, kDomain, kMaintenance };

FaultSchedule generate_impl(const Graph& g,
                            const std::vector<PowerDomain>& domains,
                            const std::vector<NodeId>& tor_switches,
                            const FaultScheduleConfig& config) {
  validate_config(config);

  const double p_switch_fail = per_epoch_prob(config.switch_mtbf);
  const double p_link_fail = per_epoch_prob(config.link_mtbf);
  const double p_domain_fail = per_epoch_prob(config.domain_mtbf);
  const double p_flap = per_epoch_prob(config.flap_mtbf);
  // MTTR of 0 means repair at the next epoch boundary.
  const double p_switch_repair =
      config.switch_mttr > 0.0 ? per_epoch_prob(config.switch_mttr) : 1.0;
  const double p_link_repair =
      config.link_mttr > 0.0 ? per_epoch_prob(config.link_mttr) : 1.0;
  const double p_domain_repair =
      config.domain_mttr > 0.0 ? per_epoch_prob(config.domain_mttr) : 1.0;

  const bool wants_domains = config.domain_mtbf > 0.0 ||
                             config.cascade_prob > 0.0 ||
                             !config.maintenance.empty();
  PPDC_REQUIRE(!wants_domains || !domains.empty(),
               "domain_mtbf / cascade_prob / maintenance need power-domain "
               "metadata (generate_fault_schedule(const Topology&, ...) on a "
               "topology that defines domains)");

  // Fabric links (switch-switch, normalized, id-sorted for determinism).
  std::vector<EdgeKey> links;
  for (const NodeId u : g.switches()) {
    for (const auto& a : g.neighbors(u)) {
      if (u < a.to && g.is_switch(a.to)) links.emplace_back(u, a.to);
    }
  }
  std::sort(links.begin(), links.end());

  const auto& switches = g.switches();
  IndexedVector<SwitchIdx, char> switch_down(switches.size(), 0);
  IndexedVector<SwitchIdx, Owner> switch_owner(switches.size(), Owner::kNone);
  IndexedVector<LinkIdx, EdgeKey> link_universe(std::move(links));
  IndexedVector<LinkIdx, char> link_down(link_universe.size(), 0);
  // Remaining toggles of an active flap burst per link (0 = not flapping).
  IndexedVector<LinkIdx, int> flap_left(link_universe.size(), 0);

  // Dense switch-id -> SwitchIdx (and domain membership) lookups.
  std::vector<SwitchIdx> row_of(static_cast<std::size_t>(g.num_nodes()),
                                SwitchIdx::invalid());
  for (const SwitchIdx i : switch_down.ids()) {
    row_of[static_cast<std::size_t>(
        switches[static_cast<std::size_t>(i.value())])] = i;
  }
  std::vector<int> domain_of(static_cast<std::size_t>(g.num_nodes()), -1);
  std::vector<char> is_tor(static_cast<std::size_t>(g.num_nodes()), 0);
  for (const NodeId s : tor_switches) {
    is_tor[static_cast<std::size_t>(s)] = 1;
  }
  for (std::size_t dom = 0; dom < domains.size(); ++dom) {
    for (const NodeId s : domains[dom].switches) {
      PPDC_REQUIRE(s >= 0 && s < g.num_nodes() && g.is_switch(s),
                   "power domain '" + domains[dom].name +
                       "' names a non-switch node");
      PPDC_REQUIRE(domain_of[static_cast<std::size_t>(s)] < 0,
                   "switch " + g.label(s) + " belongs to two power domains");
      domain_of[static_cast<std::size_t>(s)] = static_cast<int>(dom);
    }
  }
  std::vector<char> domain_in_outage(domains.size(), 0);

  // Maintenance windows resolved to domain indices, validated up front.
  struct Drain {
    std::size_t domain;
    Hour start;
    Hour end;
  };
  std::vector<Drain> drains;
  for (const MaintenanceWindow& w : config.maintenance) {
    PPDC_REQUIRE(w.start >= Hour{1},
                 "maintenance window must start at epoch 1 or later (epoch 0 "
                 "sees the pristine fabric)");
    PPDC_REQUIRE(w.end > w.start, "maintenance window '" + w.domain +
                                      "' must end after it starts");
    const auto it =
        std::find_if(domains.begin(), domains.end(),
                     [&](const PowerDomain& d) { return d.name == w.domain; });
    PPDC_REQUIRE(it != domains.end(),
                 "maintenance window names unknown power domain '" + w.domain +
                     "'");
    drains.push_back({static_cast<std::size_t>(it - domains.begin()), w.start,
                      w.end});
  }

  Rng rng(config.seed);
  FaultSchedule schedule;

  const auto fail_switch = [&](Hour epoch, SwitchIdx i, Owner owner,
                               FaultCause cause) {
    switch_down[i] = 1;
    switch_owner[i] = owner;
    schedule.push_back({epoch, FaultKind::kSwitchFail,
                        switches[static_cast<std::size_t>(i.value())],
                        kInvalidNode, kInvalidNode, cause});
  };
  const auto repair_switch = [&](Hour epoch, SwitchIdx i) {
    switch_down[i] = 0;
    switch_owner[i] = Owner::kNone;
    schedule.push_back({epoch, FaultKind::kSwitchRepair,
                        switches[static_cast<std::size_t>(i.value())],
                        kInvalidNode, kInvalidNode, FaultCause::kIndependent});
  };

  for (const Hour epoch : id_range(Hour{1}, Hour{config.hours})) {
    // 1. Maintenance: drains end, then drains begin (fixed timetable, no
    // randomness). Only maintenance-owned switches return — a domain that
    // also lost power mid-drain keeps its outage victims down.
    for (const Drain& drain : drains) {
      if (drain.end != epoch) continue;
      for (const NodeId s : domains[drain.domain].switches) {
        const SwitchIdx i = row_of[static_cast<std::size_t>(s)];
        if (switch_down[i] && switch_owner[i] == Owner::kMaintenance) {
          repair_switch(epoch, i);
        }
      }
    }
    for (const Drain& drain : drains) {
      if (drain.start != epoch) continue;
      for (const NodeId s : domains[drain.domain].switches) {
        const SwitchIdx i = row_of[static_cast<std::size_t>(s)];
        if (!switch_down[i]) {
          fail_switch(epoch, i, Owner::kMaintenance,
                      FaultCause::kMaintenance);
        }
      }
    }

    // 2. Power-domain outages: one shared draw per domain, so the whole
    // domain fails in one epoch and returns in one epoch (the correlated
    // blob the independent processes cannot produce).
    for (std::size_t dom = 0; dom < domains.size(); ++dom) {
      if (domain_in_outage[dom]) {
        if (rng.bernoulli(p_domain_repair)) {
          domain_in_outage[dom] = 0;
          for (const NodeId s : domains[dom].switches) {
            const SwitchIdx i = row_of[static_cast<std::size_t>(s)];
            if (switch_down[i] && switch_owner[i] == Owner::kDomain) {
              repair_switch(epoch, i);
            }
          }
        }
      } else if (p_domain_fail > 0.0 && rng.bernoulli(p_domain_fail)) {
        domain_in_outage[dom] = 1;
        for (const NodeId s : domains[dom].switches) {
          const SwitchIdx i = row_of[static_cast<std::size_t>(s)];
          if (!switch_down[i]) {
            fail_switch(epoch, i, Owner::kDomain, FaultCause::kDomainOutage);
          }
        }
      }
    }

    // 3. Independent switch process (identical draw order to the
    // domain-free generator) plus aggregation cascades: an independently
    // failing non-ToR domain member drags each sibling down with
    // cascade_prob; victims repair independently.
    for (const SwitchIdx i : switch_down.ids()) {
      const NodeId sw = switches[static_cast<std::size_t>(i.value())];
      if (!switch_down[i] && rng.bernoulli(p_switch_fail)) {
        fail_switch(epoch, i, Owner::kIndependent, FaultCause::kIndependent);
        const int dom = domain_of[static_cast<std::size_t>(sw)];
        if (config.cascade_prob > 0.0 && dom >= 0 &&
            !is_tor[static_cast<std::size_t>(sw)]) {
          for (const NodeId s : domains[static_cast<std::size_t>(dom)]
                                    .switches) {
            if (s == sw) continue;
            const SwitchIdx j = row_of[static_cast<std::size_t>(s)];
            if (!switch_down[j] && rng.bernoulli(config.cascade_prob)) {
              fail_switch(epoch, j, Owner::kIndependent, FaultCause::kCascade);
            }
          }
        }
      } else if (switch_down[i] && switch_owner[i] == Owner::kIndependent &&
                 rng.bernoulli(p_switch_repair)) {
        repair_switch(epoch, i);
      }
    }

    // 4. Link process: active flap bursts toggle deterministically every
    // epoch (2 x flap_cycles toggles starting with a fail, so the burst
    // ends with the link up); otherwise the independent renewal process
    // runs, and an up link may start a new burst.
    for (const LinkIdx i : link_universe.ids()) {
      const auto& [u, v] = link_universe[i];
      if (flap_left[i] > 0) {
        --flap_left[i];
        if (!link_down[i]) {
          link_down[i] = 1;
          schedule.push_back({epoch, FaultKind::kLinkFail, kInvalidNode, u, v,
                              FaultCause::kFlap});
        } else {
          link_down[i] = 0;
          schedule.push_back({epoch, FaultKind::kLinkRepair, kInvalidNode, u,
                              v, FaultCause::kFlap});
        }
      } else if (!link_down[i] && rng.bernoulli(p_link_fail)) {
        link_down[i] = 1;
        schedule.push_back({epoch, FaultKind::kLinkFail, kInvalidNode, u, v,
                            FaultCause::kIndependent});
      } else if (!link_down[i] && p_flap > 0.0 && rng.bernoulli(p_flap)) {
        link_down[i] = 1;
        flap_left[i] = 2 * config.flap_cycles - 1;  // this fail is toggle one
        schedule.push_back({epoch, FaultKind::kLinkFail, kInvalidNode, u, v,
                            FaultCause::kFlap});
      } else if (link_down[i] && rng.bernoulli(p_link_repair)) {
        link_down[i] = 0;
        schedule.push_back({epoch, FaultKind::kLinkRepair, kInvalidNode, u, v,
                            FaultCause::kIndependent});
      }
    }
  }
  return schedule;
}

}  // namespace

FaultSchedule generate_fault_schedule(const Graph& g,
                                      const FaultScheduleConfig& config) {
  PPDC_REQUIRE(config.domain_mtbf == 0.0 && config.cascade_prob == 0.0 &&
                   config.maintenance.empty(),
               "domain_mtbf / cascade_prob / maintenance need power-domain "
               "metadata: call generate_fault_schedule(const Topology&, ...)");
  return generate_impl(g, {}, {}, config);
}

FaultSchedule generate_fault_schedule(const Topology& t,
                                      const FaultScheduleConfig& config) {
  std::vector<NodeId> tors(t.rack_switches.begin(), t.rack_switches.end());
  return generate_impl(t.graph, t.power_domains, tors, config);
}

FaultInjector::FaultInjector(const Graph& pristine, FaultSchedule schedule)
    : pristine_(&pristine),
      schedule_(std::move(schedule)),
      dead_nodes_(static_cast<std::size_t>(pristine.num_nodes()), 0) {
  Hour prev_epoch{0};
  for (const FaultEvent& e : schedule_) {
    PPDC_REQUIRE(e.epoch >= prev_epoch,
                 "fault schedule must be sorted by epoch");
    prev_epoch = e.epoch;
    switch (e.kind) {
      case FaultKind::kSwitchFail:
      case FaultKind::kSwitchRepair:
        PPDC_REQUIRE(e.node >= 0 && e.node < pristine.num_nodes() &&
                         pristine.is_switch(e.node),
                     "switch fault events must name a switch");
        break;
      case FaultKind::kLinkFail:
      case FaultKind::kLinkRepair:
        PPDC_REQUIRE(e.u >= 0 && e.v >= 0 && e.u < e.v &&
                         e.v < pristine.num_nodes() &&
                         pristine.has_edge(e.u, e.v),
                     "link fault events must name an existing edge (u < v)");
        break;
    }
  }
}

EpochFaults FaultInjector::advance_to(Hour epoch) {
  PPDC_REQUIRE(epoch.valid() && (!last_epoch_.valid() || epoch > last_epoch_),
               "fault injector epochs must strictly increase");
  last_epoch_ = epoch;
  EpochFaults out;
  while (next_event_ < schedule_.size() &&
         schedule_[next_event_].epoch <= epoch) {
    // Events of epochs the caller skipped are applied too (and counted
    // here): the dead set must always reflect every event up to `epoch`,
    // or a later repair would target a component that never failed.
    const FaultEvent& e = schedule_[next_event_++];
    apply(e);
    out.topology_changed = true;
    switch (e.kind) {
      case FaultKind::kSwitchFail:
        ++out.switch_failures;
        break;
      case FaultKind::kLinkFail:
        ++out.link_failures;
        break;
      case FaultKind::kSwitchRepair:
      case FaultKind::kLinkRepair:
        ++out.repairs;
        break;
    }
  }
  return out;
}

void FaultInjector::apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kSwitchFail: {
      auto& dead = dead_nodes_[static_cast<std::size_t>(e.node)];
      PPDC_REQUIRE(!dead, "switch failed while already down");
      dead = 1;
      ++dead_switch_count_;
      break;
    }
    case FaultKind::kSwitchRepair: {
      auto& dead = dead_nodes_[static_cast<std::size_t>(e.node)];
      PPDC_REQUIRE(dead, "switch repaired while not down");
      dead = 0;
      --dead_switch_count_;
      break;
    }
    case FaultKind::kLinkFail: {
      const EdgeKey key{e.u, e.v};
      PPDC_REQUIRE(std::find(dead_edges_.begin(), dead_edges_.end(), key) ==
                       dead_edges_.end(),
                   "link failed while already down");
      dead_edges_.push_back(key);
      break;
    }
    case FaultKind::kLinkRepair: {
      const EdgeKey key{e.u, e.v};
      const auto it =
          std::find(dead_edges_.begin(), dead_edges_.end(), key);
      PPDC_REQUIRE(it != dead_edges_.end(), "link repaired while not down");
      dead_edges_.erase(it);
      break;
    }
  }
}

}  // namespace ppdc
