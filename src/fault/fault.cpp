#include "fault/fault.hpp"

#include <algorithm>

#include "util/indexed_vector.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace ppdc {

namespace {

/// File-local index domain: rows of the sorted fabric-link universe built
/// by generate_fault_schedule.
struct LinkIdxTag {};
using LinkIdx = StrongId<LinkIdxTag>;

/// Per-epoch transition probability of a geometric sojourn with mean
/// `mean_epochs`. A mean of 0 disables the transition; means below one
/// epoch saturate at certainty.
double per_epoch_prob(double mean_epochs) {
  if (mean_epochs <= 0.0) return 0.0;
  return std::min(1.0, 1.0 / mean_epochs);
}

}  // namespace

FaultSchedule generate_fault_schedule(const Graph& g,
                                      const FaultScheduleConfig& config) {
  PPDC_REQUIRE(config.hours >= 1, "fault schedule needs at least one epoch");
  PPDC_REQUIRE(config.switch_mtbf >= 0.0 && config.link_mtbf >= 0.0,
               "negative MTBF");
  PPDC_REQUIRE(config.switch_mttr >= 0.0 && config.link_mttr >= 0.0,
               "negative MTTR");

  const double p_switch_fail = per_epoch_prob(config.switch_mtbf);
  const double p_link_fail = per_epoch_prob(config.link_mtbf);
  // MTTR of 0 means repair at the next epoch boundary.
  const double p_switch_repair =
      config.switch_mttr > 0.0 ? per_epoch_prob(config.switch_mttr) : 1.0;
  const double p_link_repair =
      config.link_mttr > 0.0 ? per_epoch_prob(config.link_mttr) : 1.0;

  // Fabric links (switch-switch, normalized, id-sorted for determinism).
  std::vector<EdgeKey> links;
  for (const NodeId u : g.switches()) {
    for (const auto& a : g.neighbors(u)) {
      if (u < a.to && g.is_switch(a.to)) links.emplace_back(u, a.to);
    }
  }
  std::sort(links.begin(), links.end());

  const auto& switches = g.switches();
  IndexedVector<SwitchIdx, char> switch_down(switches.size(), 0);
  IndexedVector<LinkIdx, EdgeKey> link_universe(std::move(links));
  IndexedVector<LinkIdx, char> link_down(link_universe.size(), 0);

  Rng rng(config.seed);
  FaultSchedule schedule;
  for (const Hour epoch : id_range(Hour{1}, Hour{config.hours})) {
    for (const SwitchIdx i : switch_down.ids()) {
      const NodeId sw = switches[static_cast<std::size_t>(i.value())];
      if (!switch_down[i] && rng.bernoulli(p_switch_fail)) {
        switch_down[i] = 1;
        schedule.push_back({epoch, FaultKind::kSwitchFail, sw,
                            kInvalidNode, kInvalidNode});
      } else if (switch_down[i] && rng.bernoulli(p_switch_repair)) {
        switch_down[i] = 0;
        schedule.push_back({epoch, FaultKind::kSwitchRepair, sw,
                            kInvalidNode, kInvalidNode});
      }
    }
    for (const LinkIdx i : link_universe.ids()) {
      const auto& [u, v] = link_universe[i];
      if (!link_down[i] && rng.bernoulli(p_link_fail)) {
        link_down[i] = 1;
        schedule.push_back({epoch, FaultKind::kLinkFail, kInvalidNode, u, v});
      } else if (link_down[i] && rng.bernoulli(p_link_repair)) {
        link_down[i] = 0;
        schedule.push_back({epoch, FaultKind::kLinkRepair, kInvalidNode, u, v});
      }
    }
  }
  return schedule;
}

FaultInjector::FaultInjector(const Graph& pristine, FaultSchedule schedule)
    : pristine_(&pristine),
      schedule_(std::move(schedule)),
      dead_nodes_(static_cast<std::size_t>(pristine.num_nodes()), 0) {
  Hour prev_epoch{0};
  for (const FaultEvent& e : schedule_) {
    PPDC_REQUIRE(e.epoch >= prev_epoch,
                 "fault schedule must be sorted by epoch");
    prev_epoch = e.epoch;
    switch (e.kind) {
      case FaultKind::kSwitchFail:
      case FaultKind::kSwitchRepair:
        PPDC_REQUIRE(e.node >= 0 && e.node < pristine.num_nodes() &&
                         pristine.is_switch(e.node),
                     "switch fault events must name a switch");
        break;
      case FaultKind::kLinkFail:
      case FaultKind::kLinkRepair:
        PPDC_REQUIRE(e.u >= 0 && e.v >= 0 && e.u < e.v &&
                         e.v < pristine.num_nodes() &&
                         pristine.has_edge(e.u, e.v),
                     "link fault events must name an existing edge (u < v)");
        break;
    }
  }
}

EpochFaults FaultInjector::advance_to(Hour epoch) {
  PPDC_REQUIRE(epoch.valid() && (!last_epoch_.valid() || epoch > last_epoch_),
               "fault injector epochs must strictly increase");
  last_epoch_ = epoch;
  EpochFaults out;
  while (next_event_ < schedule_.size() &&
         schedule_[next_event_].epoch <= epoch) {
    // Events of epochs the caller skipped are applied too (and counted
    // here): the dead set must always reflect every event up to `epoch`,
    // or a later repair would target a component that never failed.
    const FaultEvent& e = schedule_[next_event_++];
    apply(e);
    out.topology_changed = true;
    switch (e.kind) {
      case FaultKind::kSwitchFail:
        ++out.switch_failures;
        break;
      case FaultKind::kLinkFail:
        ++out.link_failures;
        break;
      case FaultKind::kSwitchRepair:
      case FaultKind::kLinkRepair:
        ++out.repairs;
        break;
    }
  }
  return out;
}

void FaultInjector::apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kSwitchFail: {
      auto& dead = dead_nodes_[static_cast<std::size_t>(e.node)];
      PPDC_REQUIRE(!dead, "switch failed while already down");
      dead = 1;
      ++dead_switch_count_;
      break;
    }
    case FaultKind::kSwitchRepair: {
      auto& dead = dead_nodes_[static_cast<std::size_t>(e.node)];
      PPDC_REQUIRE(dead, "switch repaired while not down");
      dead = 0;
      --dead_switch_count_;
      break;
    }
    case FaultKind::kLinkFail: {
      const EdgeKey key{e.u, e.v};
      PPDC_REQUIRE(std::find(dead_edges_.begin(), dead_edges_.end(), key) ==
                       dead_edges_.end(),
                   "link failed while already down");
      dead_edges_.push_back(key);
      break;
    }
    case FaultKind::kLinkRepair: {
      const EdgeKey key{e.u, e.v};
      const auto it =
          std::find(dead_edges_.begin(), dead_edges_.end(), key);
      PPDC_REQUIRE(it != dead_edges_.end(), "link repaired while not down");
      dead_edges_.erase(it);
      break;
    }
  }
}

}  // namespace ppdc
