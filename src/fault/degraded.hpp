// Degraded view of a faulted fabric.
//
// Masking the dead switches and links out of the pristine topology can
// split the graph into several components. DegradedNetwork owns:
//
//   * the masked Graph copy (same node ids/kinds/labels as the pristine
//     graph, so placements and flow endpoints remain addressable),
//   * an allow-disconnected AllPairs over it (cost +inf across cuts),
//   * the *serving core*: the connected component holding the most alive
//     switches (ties break toward the lowest component id). VNFs may only
//     be placed inside the core; flows with an endpoint outside it are
//     quarantined by the simulation until repairs reconnect them.
#pragma once

#include <memory>
#include <vector>

#include "graph/apsp.hpp"
#include "graph/graph.hpp"

namespace ppdc {

/// Masked topology + metric + serving-core bookkeeping. Non-copyable and
/// non-movable (the APSP holds a pointer to the owned graph); hold it by
/// unique_ptr and rebuild whenever the fault set changes.
class DegradedNetwork {
 public:
  DegradedNetwork(const Graph& pristine, const std::vector<char>& dead_node,
                  const std::vector<EdgeKey>& dead_edges);

  DegradedNetwork(const DegradedNetwork&) = delete;
  DegradedNetwork& operator=(const DegradedNetwork&) = delete;

  const Graph& graph() const noexcept { return graph_; }
  const AllPairs& apsp() const noexcept { return apsp_; }

  /// True when `v` is alive and inside the serving core.
  bool in_core(NodeId v) const;

  /// Alive switches of the serving core, ascending by id. Empty only when
  /// every switch is dead.
  const std::vector<NodeId>& core_switches() const noexcept {
    return core_switches_;
  }

  /// True when the core can host an n-VNF chain (n distinct switches).
  bool core_can_host(int n) const noexcept {
    return n >= 1 && static_cast<std::size_t>(n) <= core_switches_.size();
  }

 private:
  Graph graph_;
  AllPairs apsp_;
  std::vector<char> dead_;
  std::vector<int> comp_;
  int core_comp_ = -1;  ///< -1 when no switch is alive
  std::vector<NodeId> core_switches_;
};

}  // namespace ppdc
