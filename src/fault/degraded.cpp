#include "fault/degraded.hpp"

#include "util/require.hpp"

namespace ppdc {

DegradedNetwork::DegradedNetwork(const Graph& pristine,
                                 const std::vector<char>& dead_node,
                                 const std::vector<EdgeKey>& dead_edges)
    : graph_(masked_copy(pristine, dead_node, dead_edges)),
      apsp_(graph_, /*allow_disconnected=*/true),
      dead_(dead_node),
      comp_(connected_components(graph_)) {
  // Alive-switch census per component. Dead switches are isolated in the
  // masked copy (each sits in its own singleton component) and must not
  // count toward any core.
  std::vector<int> alive_switches;
  for (const NodeId s : graph_.switches()) {
    if (dead_[static_cast<std::size_t>(s)]) continue;
    const int c = comp_[static_cast<std::size_t>(s)];
    if (static_cast<std::size_t>(c) >= alive_switches.size()) {
      alive_switches.resize(static_cast<std::size_t>(c) + 1, 0);
    }
    ++alive_switches[static_cast<std::size_t>(c)];
  }
  for (std::size_t c = 0; c < alive_switches.size(); ++c) {
    if (core_comp_ < 0 ||
        alive_switches[c] >
            alive_switches[static_cast<std::size_t>(core_comp_)]) {
      core_comp_ = static_cast<int>(c);
    }
  }
  if (core_comp_ >= 0) {
    for (const NodeId s : graph_.switches()) {
      if (in_core(s)) core_switches_.push_back(s);
    }
  }
}

bool DegradedNetwork::in_core(NodeId v) const {
  PPDC_REQUIRE(v >= 0 && v < graph_.num_nodes(), "node out of range");
  return !dead_[static_cast<std::size_t>(v)] &&
         comp_[static_cast<std::size_t>(v)] == core_comp_;
}

}  // namespace ppdc
