// Fail-stop fault injection for the dynamic PPDC simulation.
//
// The paper's model assumes a pristine fabric; real data centers lose
// switches and links (and get them back) while the SFC is serving traffic.
// This subsystem provides:
//
//   * FaultSchedule — a deterministic, seed-reproducible timeline of
//     switch/link failure and repair events, one alternating-renewal
//     process per component (geometric sojourns with means MTBF / MTTR,
//     the discrete-epoch analogue of the usual exponential model).
//   * FaultInjector — replays a schedule epoch by epoch, maintaining the
//     set of currently dead switches and fabric links and validating that
//     the event stream is consistent (no double failures, no repairing
//     what is not broken).
//
// The injector never touches the pristine Graph: consumers build a
// DegradedNetwork (masked copy + allow-disconnected APSP) whenever
// advance_to() reports a topology change.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace ppdc {

/// What happened to which component.
enum class FaultKind : std::uint8_t {
  kSwitchFail,
  kSwitchRepair,
  kLinkFail,
  kLinkRepair,
};

/// One timeline entry. Switch events use `node`; link events use `u`/`v`
/// (normalized u < v, see make_edge_key). Epochs share the simulation's
/// Hour domain, so a flow or switch index can never masquerade as a time.
struct FaultEvent {
  Hour epoch{0};
  FaultKind kind = FaultKind::kSwitchFail;
  NodeId node = kInvalidNode;  ///< switch events
  NodeId u = kInvalidNode;     ///< link events, u < v
  NodeId v = kInvalidNode;
};

/// A timeline of fault events, non-decreasing in epoch.
using FaultSchedule = std::vector<FaultEvent>;

/// Parameters of the renewal fault process. All times are in epochs
/// (simulation hours); a mean of 0 disables that event class.
struct FaultScheduleConfig {
  int hours = 24;              ///< epochs [0, hours); epoch 0 is fault-free
  double switch_mtbf = 0.0;    ///< mean epochs between switch failures
  double switch_mttr = 2.0;    ///< mean epochs until a dead switch returns
  double link_mtbf = 0.0;      ///< mean epochs between fabric-link failures
  double link_mttr = 2.0;      ///< mean epochs until a dead link returns
  std::uint64_t seed = 0;
};

/// Draws a deterministic schedule for `g`: every switch and every
/// switch-switch fabric link runs an independent alternating up/down
/// process (per-epoch failure probability 1/MTBF while up, repair
/// probability 1/MTTR while down). Host uplinks never fail on their own —
/// losing a ToR switch already models rack disconnection. Events start at
/// epoch 1 so the initial placement always happens on the pristine fabric.
FaultSchedule generate_fault_schedule(const Graph& g,
                                      const FaultScheduleConfig& config);

/// What advance_to() applied for one epoch.
struct EpochFaults {
  int switch_failures = 0;
  int link_failures = 0;
  int repairs = 0;  ///< switch + link repairs
  /// True when any event fired this epoch (the degraded view of the
  /// topology must be rebuilt).
  bool topology_changed = false;
};

/// Replays a FaultSchedule against a pristine graph, tracking which
/// switches and fabric links are currently dead.
class FaultInjector {
 public:
  /// Validates the schedule shape (epoch-sorted, switch events name
  /// switches, link events name existing normalized edges). Consistency of
  /// the fail/repair alternation is checked as events are applied.
  FaultInjector(const Graph& pristine, FaultSchedule schedule);

  /// Applies every not-yet-applied event up to and including `epoch`.
  /// Epochs must be visited in strictly increasing order (the simulation
  /// loop calls this once per hour and never skips, so normally this is
  /// exactly the events of `epoch`).
  EpochFaults advance_to(Hour epoch);

  const Graph& pristine() const noexcept { return *pristine_; }

  /// One entry per node; 1 = currently failed (only switches ever fail).
  const std::vector<char>& dead_nodes() const noexcept { return dead_nodes_; }

  /// Currently failed fabric links, normalized u < v.
  const std::vector<EdgeKey>& dead_edges() const noexcept {
    return dead_edges_;
  }

  /// True while at least one switch or link is down.
  bool any_faults_active() const noexcept {
    return dead_switch_count_ > 0 || !dead_edges_.empty();
  }

  int dead_switch_count() const noexcept { return dead_switch_count_; }

 private:
  void apply(const FaultEvent& e);

  const Graph* pristine_;
  FaultSchedule schedule_;
  std::size_t next_event_ = 0;
  Hour last_epoch_ = Hour::invalid();  ///< sentinel: epoch 0 still pending
  std::vector<char> dead_nodes_;
  std::vector<EdgeKey> dead_edges_;
  int dead_switch_count_ = 0;
};

}  // namespace ppdc
