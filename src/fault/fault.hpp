// Fail-stop fault injection for the dynamic PPDC simulation.
//
// The paper's model assumes a pristine fabric; real data centers lose
// switches and links (and get them back) while the SFC is serving traffic.
// This subsystem provides:
//
//   * FaultSchedule — a deterministic, seed-reproducible timeline of
//     switch/link failure and repair events, one alternating-renewal
//     process per component (geometric sojourns with means MTBF / MTTR,
//     the discrete-epoch analogue of the usual exponential model).
//   * FaultInjector — replays a schedule epoch by epoch, maintaining the
//     set of currently dead switches and fabric links and validating that
//     the event stream is consistent (no double failures, no repairing
//     what is not broken).
//
// The injector never touches the pristine Graph: consumers build a
// DegradedNetwork (masked copy + allow-disconnected APSP) whenever
// advance_to() reports a topology change.
//
// Correlated fault domains (chaos layer): on top of the independent
// renewal processes, the Topology overload of generate_fault_schedule
// draws pod-scale power-domain outages, aggregation-switch cascades,
// gray (flapping) links, and scheduled maintenance drains. All of them
// compile down to the same FaultEvent stream — the injector, the
// DegradedNetwork, and the engine's serving-core logic are reused
// unchanged — and the generator keeps one unified per-component state
// machine so overlapping processes never emit an illegal double-fail or
// repair-of-healthy transition.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "topology/topology.hpp"
#include "util/ids.hpp"

namespace ppdc {

/// What happened to which component.
enum class FaultKind : std::uint8_t {
  kSwitchFail,
  kSwitchRepair,
  kLinkFail,
  kLinkRepair,
};

/// Which process drew a fault event. Purely diagnostic: the injector
/// replays every cause identically; benches and tests use it to
/// attribute chaos (a pod outage vs. an unlucky independent draw).
enum class FaultCause : std::uint8_t {
  kIndependent,  ///< per-component renewal process (and all repairs)
  kDomainOutage, ///< power-domain outage took the whole domain
  kCascade,      ///< dragged down by an aggregation-switch failure
  kFlap,         ///< gray link: one toggle of a flap burst
  kMaintenance,  ///< scheduled drain window
};

/// One timeline entry. Switch events use `node`; link events use `u`/`v`
/// (normalized u < v, see make_edge_key). Epochs share the simulation's
/// Hour domain, so a flow or switch index can never masquerade as a time.
struct FaultEvent {
  Hour epoch{0};
  FaultKind kind = FaultKind::kSwitchFail;
  NodeId node = kInvalidNode;  ///< switch events
  NodeId u = kInvalidNode;     ///< link events, u < v
  NodeId v = kInvalidNode;
  FaultCause cause = FaultCause::kIndependent;
};

/// A timeline of fault events, non-decreasing in epoch.
using FaultSchedule = std::vector<FaultEvent>;

/// A scheduled drain: every switch of the named PowerDomain that is up
/// at epoch `start` fails there and is repaired at epoch `end` (the
/// first epoch after the drain). A window whose `end` reaches the
/// horizon never returns within the run.
struct MaintenanceWindow {
  std::string domain;  ///< PowerDomain::name, e.g. "pod3"
  Hour start{0};       ///< first drained epoch, >= 1
  Hour end{0};         ///< first epoch after the drain, > start
};

/// Parameters of the fault processes. All times are in epochs
/// (simulation hours); a mean of 0 disables that event class. Every mean
/// must be 0 or >= 1 epoch — a mean in (0,1) would demand a per-epoch
/// probability above 1 and is rejected with a PpdcError naming the field
/// (no silent clamping).
struct FaultScheduleConfig {
  int hours = 24;              ///< epochs [0, hours); epoch 0 is fault-free
  double switch_mtbf = 0.0;    ///< mean epochs between switch failures
  double switch_mttr = 2.0;    ///< mean epochs until a dead switch returns
  double link_mtbf = 0.0;      ///< mean epochs between fabric-link failures
  double link_mttr = 2.0;      ///< mean epochs until a dead link returns
  std::uint64_t seed = 0;

  // --- Correlated fault domains. The knobs below (except the link-level
  // flap process) need PowerDomain metadata: use the Topology overload.
  double domain_mtbf = 0.0;  ///< mean epochs between power outages per domain
  double domain_mttr = 4.0;  ///< mean epochs until the whole domain returns
  /// When an aggregation switch (a domain member that is not a ToR) fails
  /// independently, each other switch of its domain is dragged down with
  /// this probability (victims repair independently).
  double cascade_prob = 0.0;
  /// Gray links: mean epochs between flap bursts per fabric link. A burst
  /// toggles the link every epoch through `flap_cycles` fail/repair
  /// cycles, ending up.
  double flap_mtbf = 0.0;
  int flap_cycles = 3;  ///< fail/repair cycles per flap burst (>= 1)
  std::vector<MaintenanceWindow> maintenance;  ///< scheduled drains
};

/// Draws a deterministic schedule for `g`: every switch and every
/// switch-switch fabric link runs an independent alternating up/down
/// process (per-epoch failure probability 1/MTBF while up, repair
/// probability 1/MTTR while down). Host uplinks never fail on their own —
/// losing a ToR switch already models rack disconnection. Events start at
/// epoch 1 so the initial placement always happens on the pristine fabric.
/// Domain-level knobs (domain_mtbf, cascade_prob, maintenance) are
/// rejected here — they need PowerDomain metadata, use the Topology
/// overload; the link-level flap process is available on both.
FaultSchedule generate_fault_schedule(const Graph& g,
                                      const FaultScheduleConfig& config);

/// Topology-aware overload: additionally draws correlated events over
/// `t.power_domains` — pod-scale power outages (every up switch of a
/// domain fails together and returns together), aggregation-switch
/// cascades, and scheduled maintenance drains. With every domain knob at
/// its default this reproduces the Graph overload bit for bit.
FaultSchedule generate_fault_schedule(const Topology& t,
                                      const FaultScheduleConfig& config);

/// What advance_to() applied for one epoch.
struct EpochFaults {
  int switch_failures = 0;
  int link_failures = 0;
  int repairs = 0;  ///< switch + link repairs
  /// True when any event fired this epoch (the degraded view of the
  /// topology must be rebuilt).
  bool topology_changed = false;
};

/// Replays a FaultSchedule against a pristine graph, tracking which
/// switches and fabric links are currently dead.
class FaultInjector {
 public:
  /// Validates the schedule shape (epoch-sorted, switch events name
  /// switches, link events name existing normalized edges). Consistency of
  /// the fail/repair alternation is checked as events are applied.
  FaultInjector(const Graph& pristine, FaultSchedule schedule);

  /// Applies every not-yet-applied event up to and including `epoch`.
  /// Epochs must be visited in strictly increasing order (the simulation
  /// loop calls this once per hour and never skips, so normally this is
  /// exactly the events of `epoch`).
  EpochFaults advance_to(Hour epoch);

  const Graph& pristine() const noexcept { return *pristine_; }

  /// One entry per node; 1 = currently failed (only switches ever fail).
  const std::vector<char>& dead_nodes() const noexcept { return dead_nodes_; }

  /// Currently failed fabric links, normalized u < v.
  const std::vector<EdgeKey>& dead_edges() const noexcept {
    return dead_edges_;
  }

  /// True while at least one switch or link is down.
  bool any_faults_active() const noexcept {
    return dead_switch_count_ > 0 || !dead_edges_.empty();
  }

  int dead_switch_count() const noexcept { return dead_switch_count_; }

 private:
  void apply(const FaultEvent& e);

  const Graph* pristine_;
  FaultSchedule schedule_;
  std::size_t next_event_ = 0;
  Hour last_epoch_ = Hour::invalid();  ///< sentinel: epoch 0 still pending
  std::vector<char> dead_nodes_;
  std::vector<EdgeKey> dead_edges_;
  int dead_switch_count_ = 0;
};

}  // namespace ppdc
