#include "io/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "graph/graph.hpp"
#include "util/checksum.hpp"
#include "util/ids.hpp"
#include "util/require.hpp"

namespace ppdc {

namespace {

/// Integrity footer appended as the final line of every serialized
/// artifact: "# crc32 <8 hex digits>" over every byte that precedes the
/// footer line. It is a comment, so readers predating the footer (and
/// LineReader below) skip it — new files remain loadable by old code.
constexpr const char* kCrcMarker = "# crc32 ";

std::string format_crc(std::uint32_t crc) {
  std::ostringstream os;
  os << kCrcMarker << std::hex << std::setw(8) << std::setfill('0') << crc
     << "\n";
  return std::move(os).str();
}

/// Writes `body` followed by its CRC-32 footer line.
void write_with_footer(std::ostream& os, const std::string& body) {
  os << body << format_crc(crc32(body));
}

std::string slurp(std::istream& is, const char* what) {
  std::ostringstream buf;
  buf << is.rdbuf();
  PPDC_REQUIRE(!is.bad(), std::string("cannot read ") + what + " stream");
  return std::move(buf).str();
}

/// Verifies the CRC-32 footer of a slurped artifact, when present.
/// Truncation or bit rot throws a PpdcError naming the footer's line
/// number and the byte range the mismatch covers; a footer-less (legacy)
/// file loads with a warning on stderr instead of failing.
void verify_footer(const std::string& text, const char* what) {
  // Locate the final non-empty line.
  std::size_t end = text.size();
  while (end > 0 && (text[end - 1] == '\n' || text[end - 1] == '\r')) --end;
  if (end == 0) return;  // nothing to verify; the parser reports emptiness
  std::size_t line_start = text.rfind('\n', end - 1);
  line_start = line_start == std::string::npos ? 0 : line_start + 1;
  const std::string last = text.substr(line_start, end - line_start);
  const std::size_t marker_len = std::string(kCrcMarker).size();
  if (last.compare(0, marker_len, kCrcMarker) != 0) {
    std::cerr << "warning: " << what
              << ": no crc32 footer (legacy file); integrity unverified\n";
    return;
  }
  const int footer_line =
      1 + static_cast<int>(std::count(text.begin(),
                                      text.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              line_start),
                                      '\n'));
  const std::string hex = last.substr(marker_len);
  std::uint32_t stored = 0;
  try {
    std::size_t consumed = 0;
    const unsigned long parsed = std::stoul(hex, &consumed, 16);
    PPDC_REQUIRE(consumed == hex.size() && parsed <= 0xFFFFFFFFul,
                 "trailing characters");
    stored = static_cast<std::uint32_t>(parsed);
  } catch (const std::exception&) {
    throw PpdcError("line " + std::to_string(footer_line) + ": " + what +
                    ": malformed crc32 footer: '" + last + "'");
  }
  const std::uint32_t actual = crc32(text.data(), line_start);
  PPDC_REQUIRE(actual == stored,
               "line " + std::to_string(footer_line) + ": " + what +
                   ": crc32 mismatch over bytes [0, " +
                   std::to_string(line_start) + ") — file truncated or "
                   "corrupt (footer says " + format_crc(stored).substr(
                       marker_len, 8) + ", content hashes to " +
                   format_crc(actual).substr(marker_len, 8) + ")");
}

/// Pulls meaningful lines (skipping blanks and '#' comments) while
/// counting every physical line, so every parse error can report the
/// 1-based line number and the offending text.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(&is) {}

  /// Reads the next meaningful line.
  bool next(std::string* line) {
    while (std::getline(*is_, *line)) {
      ++line_;
      const auto first = line->find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      if ((*line)[first] == '#') continue;
      return true;
    }
    ++line_;  // the position just past the last physical line
    return false;
  }

  /// 1-based number of the line last returned by next().
  int line_number() const noexcept { return line_; }

  /// Error-message prefix locating the current line: "line N: msg: 'text'".
  std::string where(const std::string& msg, const std::string& text) const {
    return "line " + std::to_string(line_) + ": " + msg + ": '" + text + "'";
  }

 private:
  std::istream* is_;
  int line_ = 0;
};

void expect_header(LineReader& in, const std::string& magic) {
  std::string line;
  PPDC_REQUIRE(in.next(&line),
               "line " + std::to_string(in.line_number()) +
                   ": unexpected end of input, expected header '" + magic +
                   " v1'");
  std::istringstream ss(line);
  std::string word, version;
  ss >> word >> version;
  PPDC_REQUIRE(word == magic && version == "v1",
               in.where("expected header '" + magic + " v1'", line));
}

}  // namespace

void save_topology(std::ostream& os, const Topology& topo) {
  const Graph& g = topo.graph;
  std::ostringstream body;
  body << std::setprecision(std::numeric_limits<double>::max_digits10);
  body << "ppdc-topology v1\n";
  body << "name " << topo.name << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    body << "node " << v << ' ' << (g.is_host(v) ? "host" : "switch") << ' '
         << g.label(v) << "\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& a : g.neighbors(u)) {
      if (u < a.to) {
        body << "edge " << u << ' ' << a.to << ' ' << a.weight << "\n";
      }
    }
  }
  for (const RackIdx r : topo.racks.ids()) {
    body << "rack " << topo.rack_switches[r];
    for (const NodeId h : topo.racks[r]) body << ' ' << h;
    body << "\n";
  }
  write_with_footer(os, std::move(body).str());
}

Topology load_topology(std::istream& is) {
  const std::string text = slurp(is, "topology");
  verify_footer(text, "topology");
  std::istringstream verified(text);
  LineReader in(verified);
  expect_header(in, "ppdc-topology");
  Topology topo;
  std::string line;
  while (in.next(&line)) {
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "name") {
      ss >> topo.name;
      PPDC_REQUIRE(!ss.fail(), in.where("malformed name line", line));
    } else if (kind == "node") {
      NodeId id;
      std::string role, label;
      ss >> id >> role >> label;
      PPDC_REQUIRE(!ss.fail(), in.where("malformed node line", line));
      PPDC_REQUIRE(role == "host" || role == "switch",
                   in.where("bad node role", line));
      const NodeId got = topo.graph.add_node(
          role == "host" ? NodeKind::kHost : NodeKind::kSwitch, label);
      PPDC_REQUIRE(got == id,
                   in.where("node ids must be dense and in order", line));
    } else if (kind == "edge") {
      NodeId u, v;
      double w;
      ss >> u >> v >> w;
      PPDC_REQUIRE(!ss.fail(), in.where("malformed edge line", line));
      PPDC_REQUIRE(std::isfinite(w) && w >= 0.0,
                   in.where("edge weight must be finite and >= 0", line));
      // Graph::add_edge validates endpoints and duplicates, but knows
      // nothing about the file — re-anchor its diagnostics on the line.
      try {
        topo.graph.add_edge(u, v, w);
      } catch (const PpdcError& e) {
        throw PpdcError(in.where(std::string("bad edge: ") + e.what(), line));
      }
    } else if (kind == "rack") {
      NodeId sw;
      ss >> sw;
      PPDC_REQUIRE(!ss.fail(), in.where("malformed rack line", line));
      PPDC_REQUIRE(sw >= 0 && sw < topo.graph.num_nodes() &&
                       !topo.graph.is_host(sw),
                   in.where("rack switch must name a declared switch", line));
      std::vector<NodeId> hosts;
      NodeId h;
      while (ss >> h) {
        PPDC_REQUIRE(h >= 0 && h < topo.graph.num_nodes() &&
                         topo.graph.is_host(h),
                     in.where("rack member must name a declared host", line));
        hosts.push_back(h);
      }
      PPDC_REQUIRE(ss.eof(), in.where("malformed rack line", line));
      PPDC_REQUIRE(!hosts.empty(), in.where("rack without hosts", line));
      topo.rack_switches.push_back(sw);
      topo.racks.push_back(std::move(hosts));
    } else {
      throw PpdcError(in.where("unknown topology directive", line));
    }
  }
  PPDC_REQUIRE(topo.graph.num_nodes() > 0, "topology has no nodes");
  return topo;
}

void save_flows(std::ostream& os, const std::vector<VmFlow>& flows) {
  std::ostringstream body;
  body << std::setprecision(std::numeric_limits<double>::max_digits10);
  body << "ppdc-flows v1\n";
  for (const auto& f : flows) {
    body << "flow " << f.src_host << ' ' << f.dst_host << ' ' << f.rate << ' '
         << f.group << "\n";
  }
  write_with_footer(os, std::move(body).str());
}

std::vector<VmFlow> load_flows(std::istream& is) {
  const std::string text = slurp(is, "flows");
  verify_footer(text, "flows");
  std::istringstream verified(text);
  LineReader in(verified);
  expect_header(in, "ppdc-flows");
  std::vector<VmFlow> flows;
  std::string line;
  while (in.next(&line)) {
    std::istringstream ss(line);
    std::string kind;
    VmFlow f;
    ss >> kind >> f.src_host >> f.dst_host >> f.rate >> f.group;
    PPDC_REQUIRE(kind == "flow" && !ss.fail(),
                 in.where("malformed flow line", line));
    PPDC_REQUIRE(f.src_host >= 0 && f.dst_host >= 0,
                 in.where("flow endpoints must be non-negative", line));
    PPDC_REQUIRE(std::isfinite(f.rate) && f.rate >= 0.0,
                 in.where("flow rate must be finite and >= 0", line));
    PPDC_REQUIRE(f.group >= 0,
                 in.where("flow group must be non-negative", line));
    flows.push_back(f);
  }
  return flows;
}

void save_placement(std::ostream& os, const Placement& p) {
  std::ostringstream body;
  body << "ppdc-placement v1\n";
  for (std::size_t j = 0; j < p.size(); ++j) {
    body << "vnf " << j << ' ' << p[j] << "\n";
  }
  write_with_footer(os, std::move(body).str());
}

Placement load_placement(std::istream& is) {
  const std::string text = slurp(is, "placement");
  verify_footer(text, "placement");
  std::istringstream verified(text);
  LineReader in(verified);
  expect_header(in, "ppdc-placement");
  Placement p;
  std::string line;
  while (in.next(&line)) {
    std::istringstream ss(line);
    std::string kind;
    std::size_t index;
    NodeId sw;
    ss >> kind >> index >> sw;
    PPDC_REQUIRE(kind == "vnf" && !ss.fail(),
                 in.where("malformed placement line", line));
    PPDC_REQUIRE(index == p.size(),
                 in.where("vnf indices must be dense, in order", line));
    PPDC_REQUIRE(sw >= 0,
                 in.where("placement switch must be non-negative", line));
    p.push_back(sw);
  }
  return p;
}

}  // namespace ppdc
