#include "io/serialize.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "util/require.hpp"

namespace ppdc {

namespace {

/// Reads the next meaningful line (skips blanks and '#' comments).
bool next_line(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    const auto first = line->find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if ((*line)[first] == '#') continue;
    return true;
  }
  return false;
}

void expect_header(std::istream& is, const std::string& magic) {
  std::string line;
  PPDC_REQUIRE(next_line(is, &line), "unexpected end of input");
  std::istringstream ss(line);
  std::string word, version;
  ss >> word >> version;
  PPDC_REQUIRE(word == magic && version == "v1",
               "expected header '" + magic + " v1', got '" + line + "'");
}

}  // namespace

void save_topology(std::ostream& os, const Topology& topo) {
  const Graph& g = topo.graph;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "ppdc-topology v1\n";
  os << "name " << topo.name << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "node " << v << ' ' << (g.is_host(v) ? "host" : "switch") << ' '
       << g.label(v) << "\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& a : g.neighbors(u)) {
      if (u < a.to) {
        os << "edge " << u << ' ' << a.to << ' ' << a.weight << "\n";
      }
    }
  }
  for (std::size_t r = 0; r < topo.racks.size(); ++r) {
    os << "rack " << topo.rack_switches[r];
    for (const NodeId h : topo.racks[r]) os << ' ' << h;
    os << "\n";
  }
}

Topology load_topology(std::istream& is) {
  expect_header(is, "ppdc-topology");
  Topology topo;
  std::string line;
  while (next_line(is, &line)) {
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "name") {
      ss >> topo.name;
    } else if (kind == "node") {
      NodeId id;
      std::string role, label;
      ss >> id >> role >> label;
      PPDC_REQUIRE(!ss.fail(), "malformed node line: " + line);
      PPDC_REQUIRE(role == "host" || role == "switch",
                   "bad node role in: " + line);
      const NodeId got = topo.graph.add_node(
          role == "host" ? NodeKind::kHost : NodeKind::kSwitch, label);
      PPDC_REQUIRE(got == id, "node ids must be dense and in order");
    } else if (kind == "edge") {
      NodeId u, v;
      double w;
      ss >> u >> v >> w;
      PPDC_REQUIRE(!ss.fail(), "malformed edge line: " + line);
      topo.graph.add_edge(u, v, w);
    } else if (kind == "rack") {
      NodeId sw;
      ss >> sw;
      PPDC_REQUIRE(!ss.fail(), "malformed rack line: " + line);
      std::vector<NodeId> hosts;
      NodeId h;
      while (ss >> h) hosts.push_back(h);
      PPDC_REQUIRE(!hosts.empty(), "rack without hosts: " + line);
      topo.rack_switches.push_back(sw);
      topo.racks.push_back(std::move(hosts));
    } else {
      throw PpdcError("unknown topology directive: " + line);
    }
  }
  PPDC_REQUIRE(topo.graph.num_nodes() > 0, "topology has no nodes");
  return topo;
}

void save_flows(std::ostream& os, const std::vector<VmFlow>& flows) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "ppdc-flows v1\n";
  for (const auto& f : flows) {
    os << "flow " << f.src_host << ' ' << f.dst_host << ' ' << f.rate << ' '
       << f.group << "\n";
  }
}

std::vector<VmFlow> load_flows(std::istream& is) {
  expect_header(is, "ppdc-flows");
  std::vector<VmFlow> flows;
  std::string line;
  while (next_line(is, &line)) {
    std::istringstream ss(line);
    std::string kind;
    VmFlow f;
    ss >> kind >> f.src_host >> f.dst_host >> f.rate >> f.group;
    PPDC_REQUIRE(kind == "flow" && !ss.fail(),
                 "malformed flow line: " + line);
    flows.push_back(f);
  }
  return flows;
}

void save_placement(std::ostream& os, const Placement& p) {
  os << "ppdc-placement v1\n";
  for (std::size_t j = 0; j < p.size(); ++j) {
    os << "vnf " << j << ' ' << p[j] << "\n";
  }
}

Placement load_placement(std::istream& is) {
  expect_header(is, "ppdc-placement");
  Placement p;
  std::string line;
  while (next_line(is, &line)) {
    std::istringstream ss(line);
    std::string kind;
    std::size_t index;
    NodeId sw;
    ss >> kind >> index >> sw;
    PPDC_REQUIRE(kind == "vnf" && !ss.fail(),
                 "malformed placement line: " + line);
    PPDC_REQUIRE(index == p.size(), "vnf indices must be dense, in order");
    p.push_back(sw);
  }
  return p;
}

}  // namespace ppdc
