#include "io/serialize.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "util/require.hpp"

namespace ppdc {

namespace {

/// Pulls meaningful lines (skipping blanks and '#' comments) while
/// counting every physical line, so every parse error can report the
/// 1-based line number and the offending text.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(&is) {}

  /// Reads the next meaningful line.
  bool next(std::string* line) {
    while (std::getline(*is_, *line)) {
      ++line_;
      const auto first = line->find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      if ((*line)[first] == '#') continue;
      return true;
    }
    ++line_;  // the position just past the last physical line
    return false;
  }

  /// 1-based number of the line last returned by next().
  int line_number() const noexcept { return line_; }

  /// Error-message prefix locating the current line: "line N: msg: 'text'".
  std::string where(const std::string& msg, const std::string& text) const {
    return "line " + std::to_string(line_) + ": " + msg + ": '" + text + "'";
  }

 private:
  std::istream* is_;
  int line_ = 0;
};

void expect_header(LineReader& in, const std::string& magic) {
  std::string line;
  PPDC_REQUIRE(in.next(&line),
               "line " + std::to_string(in.line_number()) +
                   ": unexpected end of input, expected header '" + magic +
                   " v1'");
  std::istringstream ss(line);
  std::string word, version;
  ss >> word >> version;
  PPDC_REQUIRE(word == magic && version == "v1",
               in.where("expected header '" + magic + " v1'", line));
}

}  // namespace

void save_topology(std::ostream& os, const Topology& topo) {
  const Graph& g = topo.graph;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "ppdc-topology v1\n";
  os << "name " << topo.name << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "node " << v << ' ' << (g.is_host(v) ? "host" : "switch") << ' '
       << g.label(v) << "\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& a : g.neighbors(u)) {
      if (u < a.to) {
        os << "edge " << u << ' ' << a.to << ' ' << a.weight << "\n";
      }
    }
  }
  for (const RackIdx r : topo.racks.ids()) {
    os << "rack " << topo.rack_switches[r];
    for (const NodeId h : topo.racks[r]) os << ' ' << h;
    os << "\n";
  }
}

Topology load_topology(std::istream& is) {
  LineReader in(is);
  expect_header(in, "ppdc-topology");
  Topology topo;
  std::string line;
  while (in.next(&line)) {
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "name") {
      ss >> topo.name;
    } else if (kind == "node") {
      NodeId id;
      std::string role, label;
      ss >> id >> role >> label;
      PPDC_REQUIRE(!ss.fail(), in.where("malformed node line", line));
      PPDC_REQUIRE(role == "host" || role == "switch",
                   in.where("bad node role", line));
      const NodeId got = topo.graph.add_node(
          role == "host" ? NodeKind::kHost : NodeKind::kSwitch, label);
      PPDC_REQUIRE(got == id,
                   in.where("node ids must be dense and in order", line));
    } else if (kind == "edge") {
      NodeId u, v;
      double w;
      ss >> u >> v >> w;
      PPDC_REQUIRE(!ss.fail(), in.where("malformed edge line", line));
      topo.graph.add_edge(u, v, w);
    } else if (kind == "rack") {
      NodeId sw;
      ss >> sw;
      PPDC_REQUIRE(!ss.fail(), in.where("malformed rack line", line));
      std::vector<NodeId> hosts;
      NodeId h;
      while (ss >> h) hosts.push_back(h);
      PPDC_REQUIRE(!hosts.empty(), in.where("rack without hosts", line));
      topo.rack_switches.push_back(sw);
      topo.racks.push_back(std::move(hosts));
    } else {
      throw PpdcError(in.where("unknown topology directive", line));
    }
  }
  PPDC_REQUIRE(topo.graph.num_nodes() > 0, "topology has no nodes");
  return topo;
}

void save_flows(std::ostream& os, const std::vector<VmFlow>& flows) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "ppdc-flows v1\n";
  for (const auto& f : flows) {
    os << "flow " << f.src_host << ' ' << f.dst_host << ' ' << f.rate << ' '
       << f.group << "\n";
  }
}

std::vector<VmFlow> load_flows(std::istream& is) {
  LineReader in(is);
  expect_header(in, "ppdc-flows");
  std::vector<VmFlow> flows;
  std::string line;
  while (in.next(&line)) {
    std::istringstream ss(line);
    std::string kind;
    VmFlow f;
    ss >> kind >> f.src_host >> f.dst_host >> f.rate >> f.group;
    PPDC_REQUIRE(kind == "flow" && !ss.fail(),
                 in.where("malformed flow line", line));
    flows.push_back(f);
  }
  return flows;
}

void save_placement(std::ostream& os, const Placement& p) {
  os << "ppdc-placement v1\n";
  for (std::size_t j = 0; j < p.size(); ++j) {
    os << "vnf " << j << ' ' << p[j] << "\n";
  }
}

Placement load_placement(std::istream& is) {
  LineReader in(is);
  expect_header(in, "ppdc-placement");
  Placement p;
  std::string line;
  while (in.next(&line)) {
    std::istringstream ss(line);
    std::string kind;
    std::size_t index;
    NodeId sw;
    ss >> kind >> index >> sw;
    PPDC_REQUIRE(kind == "vnf" && !ss.fail(),
                 in.where("malformed placement line", line));
    PPDC_REQUIRE(index == p.size(),
                 in.where("vnf indices must be dense, in order", line));
    p.push_back(sw);
  }
  return p;
}

}  // namespace ppdc
