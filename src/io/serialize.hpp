// Plain-text serialization of topologies, workloads and placements, so
// experiments can be scripted and exchanged (see the ppdc_cli example).
//
// Format (line-oriented, whitespace-separated, '#' comments):
//
//   ppdc-topology v1
//   name <string>
//   node <id> host|switch <label>      (ids must be dense, in order)
//   edge <u> <v> <weight>
//   rack <switch> <host> [<host> ...]
//
//   ppdc-flows v1
//   flow <src-host> <dst-host> <rate> <group>
//
//   ppdc-placement v1
//   vnf <index> <switch>
//
// Integrity: every save_* appends a final "# crc32 <8 hex digits>" line
// covering all preceding bytes. Loaders verify it and throw a PpdcError
// naming the footer line and the corrupt byte range on mismatch —
// truncated or bit-rotted artifacts are detected instead of being parsed
// into a silently wrong experiment. Because the footer is a comment,
// readers that predate it still load new files; files without a footer
// (written before it existed) still load, with a warning on stderr.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/cost_model.hpp"
#include "topology/topology.hpp"
#include "workload/traffic.hpp"

namespace ppdc {

void save_topology(std::ostream& os, const Topology& topo);
Topology load_topology(std::istream& is);

void save_flows(std::ostream& os, const std::vector<VmFlow>& flows);
std::vector<VmFlow> load_flows(std::istream& is);

void save_placement(std::ostream& os, const Placement& p);
Placement load_placement(std::istream& is);

}  // namespace ppdc
