# Empty dependencies file for ppdc.
# This may be replaced when dependencies are built.
