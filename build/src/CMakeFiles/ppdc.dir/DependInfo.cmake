
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/greedy_liu.cpp" "src/CMakeFiles/ppdc.dir/baselines/greedy_liu.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/baselines/greedy_liu.cpp.o.d"
  "/root/repo/src/baselines/steering.cpp" "src/CMakeFiles/ppdc.dir/baselines/steering.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/baselines/steering.cpp.o.d"
  "/root/repo/src/baselines/vm_migration.cpp" "src/CMakeFiles/ppdc.dir/baselines/vm_migration.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/baselines/vm_migration.cpp.o.d"
  "/root/repo/src/core/chain_search.cpp" "src/CMakeFiles/ppdc.dir/core/chain_search.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/chain_search.cpp.o.d"
  "/root/repo/src/core/colocation.cpp" "src/CMakeFiles/ppdc.dir/core/colocation.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/colocation.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/CMakeFiles/ppdc.dir/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/cost_model.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/CMakeFiles/ppdc.dir/core/explain.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/explain.cpp.o.d"
  "/root/repo/src/core/frontier.cpp" "src/CMakeFiles/ppdc.dir/core/frontier.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/frontier.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/CMakeFiles/ppdc.dir/core/local_search.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/local_search.cpp.o.d"
  "/root/repo/src/core/migration_pareto.cpp" "src/CMakeFiles/ppdc.dir/core/migration_pareto.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/migration_pareto.cpp.o.d"
  "/root/repo/src/core/multi_sfc.cpp" "src/CMakeFiles/ppdc.dir/core/multi_sfc.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/multi_sfc.cpp.o.d"
  "/root/repo/src/core/pareto_front.cpp" "src/CMakeFiles/ppdc.dir/core/pareto_front.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/pareto_front.cpp.o.d"
  "/root/repo/src/core/placement_dp.cpp" "src/CMakeFiles/ppdc.dir/core/placement_dp.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/placement_dp.cpp.o.d"
  "/root/repo/src/core/replication.cpp" "src/CMakeFiles/ppdc.dir/core/replication.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/replication.cpp.o.d"
  "/root/repo/src/core/stroll_dp.cpp" "src/CMakeFiles/ppdc.dir/core/stroll_dp.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/stroll_dp.cpp.o.d"
  "/root/repo/src/core/stroll_primal_dual.cpp" "src/CMakeFiles/ppdc.dir/core/stroll_primal_dual.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/core/stroll_primal_dual.cpp.o.d"
  "/root/repo/src/flow/min_cost_flow.cpp" "src/CMakeFiles/ppdc.dir/flow/min_cost_flow.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/flow/min_cost_flow.cpp.o.d"
  "/root/repo/src/graph/apsp.cpp" "src/CMakeFiles/ppdc.dir/graph/apsp.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/graph/apsp.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/ppdc.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/ppdc.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/shortest_paths.cpp" "src/CMakeFiles/ppdc.dir/graph/shortest_paths.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/graph/shortest_paths.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/CMakeFiles/ppdc.dir/io/serialize.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/io/serialize.cpp.o.d"
  "/root/repo/src/net/link_load.cpp" "src/CMakeFiles/ppdc.dir/net/link_load.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/net/link_load.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/ppdc.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/ppdc.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/policy.cpp" "src/CMakeFiles/ppdc.dir/sim/policy.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/sim/policy.cpp.o.d"
  "/root/repo/src/topology/bcube.cpp" "src/CMakeFiles/ppdc.dir/topology/bcube.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/topology/bcube.cpp.o.d"
  "/root/repo/src/topology/dcell.cpp" "src/CMakeFiles/ppdc.dir/topology/dcell.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/topology/dcell.cpp.o.d"
  "/root/repo/src/topology/fat_tree.cpp" "src/CMakeFiles/ppdc.dir/topology/fat_tree.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/topology/fat_tree.cpp.o.d"
  "/root/repo/src/topology/leaf_spine.cpp" "src/CMakeFiles/ppdc.dir/topology/leaf_spine.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/topology/leaf_spine.cpp.o.d"
  "/root/repo/src/topology/linear.cpp" "src/CMakeFiles/ppdc.dir/topology/linear.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/topology/linear.cpp.o.d"
  "/root/repo/src/topology/misc.cpp" "src/CMakeFiles/ppdc.dir/topology/misc.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/topology/misc.cpp.o.d"
  "/root/repo/src/topology/vl2.cpp" "src/CMakeFiles/ppdc.dir/topology/vl2.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/topology/vl2.cpp.o.d"
  "/root/repo/src/topology/weights.cpp" "src/CMakeFiles/ppdc.dir/topology/weights.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/topology/weights.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/ppdc.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/util/options.cpp.o.d"
  "/root/repo/src/util/require.cpp" "src/CMakeFiles/ppdc.dir/util/require.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/util/require.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/ppdc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/ppdc.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/ppdc.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/util/table.cpp.o.d"
  "/root/repo/src/workload/diurnal.cpp" "src/CMakeFiles/ppdc.dir/workload/diurnal.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/workload/diurnal.cpp.o.d"
  "/root/repo/src/workload/traffic.cpp" "src/CMakeFiles/ppdc.dir/workload/traffic.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/workload/traffic.cpp.o.d"
  "/root/repo/src/workload/vm_placement.cpp" "src/CMakeFiles/ppdc.dir/workload/vm_placement.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/workload/vm_placement.cpp.o.d"
  "/root/repo/src/workload/zoom.cpp" "src/CMakeFiles/ppdc.dir/workload/zoom.cpp.o" "gcc" "src/CMakeFiles/ppdc.dir/workload/zoom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
