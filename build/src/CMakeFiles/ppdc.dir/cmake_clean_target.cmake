file(REMOVE_RECURSE
  "libppdc.a"
)
