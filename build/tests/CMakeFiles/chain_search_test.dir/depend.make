# Empty dependencies file for chain_search_test.
# This may be replaced when dependencies are built.
