file(REMOVE_RECURSE
  "CMakeFiles/chain_search_test.dir/chain_search_test.cpp.o"
  "CMakeFiles/chain_search_test.dir/chain_search_test.cpp.o.d"
  "chain_search_test"
  "chain_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
