# Empty compiler generated dependencies file for downtime_test.
# This may be replaced when dependencies are built.
