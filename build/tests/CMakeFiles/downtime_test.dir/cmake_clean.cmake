file(REMOVE_RECURSE
  "CMakeFiles/downtime_test.dir/downtime_test.cpp.o"
  "CMakeFiles/downtime_test.dir/downtime_test.cpp.o.d"
  "downtime_test"
  "downtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
