# Empty dependencies file for stroll_dp_test.
# This may be replaced when dependencies are built.
