file(REMOVE_RECURSE
  "CMakeFiles/stroll_dp_test.dir/stroll_dp_test.cpp.o"
  "CMakeFiles/stroll_dp_test.dir/stroll_dp_test.cpp.o.d"
  "stroll_dp_test"
  "stroll_dp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stroll_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
