# Empty compiler generated dependencies file for apsp_crosscheck_test.
# This may be replaced when dependencies are built.
