file(REMOVE_RECURSE
  "CMakeFiles/apsp_crosscheck_test.dir/apsp_crosscheck_test.cpp.o"
  "CMakeFiles/apsp_crosscheck_test.dir/apsp_crosscheck_test.cpp.o.d"
  "apsp_crosscheck_test"
  "apsp_crosscheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apsp_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
