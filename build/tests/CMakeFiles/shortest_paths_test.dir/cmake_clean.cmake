file(REMOVE_RECURSE
  "CMakeFiles/shortest_paths_test.dir/shortest_paths_test.cpp.o"
  "CMakeFiles/shortest_paths_test.dir/shortest_paths_test.cpp.o.d"
  "shortest_paths_test"
  "shortest_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortest_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
