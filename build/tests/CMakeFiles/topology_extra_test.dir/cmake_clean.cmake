file(REMOVE_RECURSE
  "CMakeFiles/topology_extra_test.dir/topology_extra_test.cpp.o"
  "CMakeFiles/topology_extra_test.dir/topology_extra_test.cpp.o.d"
  "topology_extra_test"
  "topology_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
