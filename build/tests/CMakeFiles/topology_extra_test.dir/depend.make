# Empty dependencies file for topology_extra_test.
# This may be replaced when dependencies are built.
