# Empty compiler generated dependencies file for headline_shapes_test.
# This may be replaced when dependencies are built.
