file(REMOVE_RECURSE
  "CMakeFiles/headline_shapes_test.dir/headline_shapes_test.cpp.o"
  "CMakeFiles/headline_shapes_test.dir/headline_shapes_test.cpp.o.d"
  "headline_shapes_test"
  "headline_shapes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
