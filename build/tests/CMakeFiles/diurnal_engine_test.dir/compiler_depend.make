# Empty compiler generated dependencies file for diurnal_engine_test.
# This may be replaced when dependencies are built.
