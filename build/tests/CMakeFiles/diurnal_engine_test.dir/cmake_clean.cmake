file(REMOVE_RECURSE
  "CMakeFiles/diurnal_engine_test.dir/diurnal_engine_test.cpp.o"
  "CMakeFiles/diurnal_engine_test.dir/diurnal_engine_test.cpp.o.d"
  "diurnal_engine_test"
  "diurnal_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diurnal_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
