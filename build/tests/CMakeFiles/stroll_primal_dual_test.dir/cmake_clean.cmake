file(REMOVE_RECURSE
  "CMakeFiles/stroll_primal_dual_test.dir/stroll_primal_dual_test.cpp.o"
  "CMakeFiles/stroll_primal_dual_test.dir/stroll_primal_dual_test.cpp.o.d"
  "stroll_primal_dual_test"
  "stroll_primal_dual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stroll_primal_dual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
