# Empty dependencies file for stroll_primal_dual_test.
# This may be replaced when dependencies are built.
