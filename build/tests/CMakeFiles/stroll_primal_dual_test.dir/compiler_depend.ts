# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stroll_primal_dual_test.
