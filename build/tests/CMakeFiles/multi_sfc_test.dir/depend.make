# Empty dependencies file for multi_sfc_test.
# This may be replaced when dependencies are built.
