file(REMOVE_RECURSE
  "CMakeFiles/multi_sfc_test.dir/multi_sfc_test.cpp.o"
  "CMakeFiles/multi_sfc_test.dir/multi_sfc_test.cpp.o.d"
  "multi_sfc_test"
  "multi_sfc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sfc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
