# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[ppdc_cli_end_to_end]=] "bash" "-c" "set -e; cd /root/repo/build/examples;              ./example_ppdc_cli --cmd=generate --k=4 --l=10 --zipf=2;              ./example_ppdc_cli --cmd=place --n=3 --out=p.txt;              ./example_ppdc_cli --cmd=migrate --placement-in=p.txt --mu=10;              ./example_ppdc_cli --cmd=cost --placement-in=p.txt;              ./example_ppdc_cli --cmd=dot --placement-in=p.txt > /dev/null")
set_tests_properties([=[ppdc_cli_end_to_end]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
