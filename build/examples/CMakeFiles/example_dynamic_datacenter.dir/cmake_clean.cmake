file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_datacenter.dir/dynamic_datacenter.cpp.o"
  "CMakeFiles/example_dynamic_datacenter.dir/dynamic_datacenter.cpp.o.d"
  "example_dynamic_datacenter"
  "example_dynamic_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
