# Empty dependencies file for example_dynamic_datacenter.
# This may be replaced when dependencies are built.
