# Empty compiler generated dependencies file for example_extensions_showcase.
# This may be replaced when dependencies are built.
