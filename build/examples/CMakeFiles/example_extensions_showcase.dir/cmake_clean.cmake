file(REMOVE_RECURSE
  "CMakeFiles/example_extensions_showcase.dir/extensions_showcase.cpp.o"
  "CMakeFiles/example_extensions_showcase.dir/extensions_showcase.cpp.o.d"
  "example_extensions_showcase"
  "example_extensions_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_extensions_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
