file(REMOVE_RECURSE
  "CMakeFiles/example_zoom_conference.dir/zoom_conference.cpp.o"
  "CMakeFiles/example_zoom_conference.dir/zoom_conference.cpp.o.d"
  "example_zoom_conference"
  "example_zoom_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_zoom_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
