# Empty compiler generated dependencies file for example_zoom_conference.
# This may be replaced when dependencies are built.
