# Empty dependencies file for example_ppdc_cli.
# This may be replaced when dependencies are built.
