file(REMOVE_RECURSE
  "CMakeFiles/example_ppdc_cli.dir/ppdc_cli.cpp.o"
  "CMakeFiles/example_ppdc_cli.dir/ppdc_cli.cpp.o.d"
  "example_ppdc_cli"
  "example_ppdc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ppdc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
