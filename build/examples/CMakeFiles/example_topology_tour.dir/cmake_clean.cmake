file(REMOVE_RECURSE
  "CMakeFiles/example_topology_tour.dir/topology_tour.cpp.o"
  "CMakeFiles/example_topology_tour.dir/topology_tour.cpp.o.d"
  "example_topology_tour"
  "example_topology_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_topology_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
