# Empty compiler generated dependencies file for example_topology_tour.
# This may be replaced when dependencies are built.
