file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_top.dir/bench_fig9_top.cpp.o"
  "CMakeFiles/bench_fig9_top.dir/bench_fig9_top.cpp.o.d"
  "bench_fig9_top"
  "bench_fig9_top.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_top.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
