# Empty dependencies file for bench_fig9_top.
# This may be replaced when dependencies are built.
