file(REMOVE_RECURSE
  "CMakeFiles/bench_linkload.dir/bench_linkload.cpp.o"
  "CMakeFiles/bench_linkload.dir/bench_linkload.cpp.o.d"
  "bench_linkload"
  "bench_linkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linkload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
