file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dynamic.dir/bench_fig11_dynamic.cpp.o"
  "CMakeFiles/bench_fig11_dynamic.dir/bench_fig11_dynamic.cpp.o.d"
  "bench_fig11_dynamic"
  "bench_fig11_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
