file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_top_weighted.dir/bench_fig10_top_weighted.cpp.o"
  "CMakeFiles/bench_fig10_top_weighted.dir/bench_fig10_top_weighted.cpp.o.d"
  "bench_fig10_top_weighted"
  "bench_fig10_top_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_top_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
