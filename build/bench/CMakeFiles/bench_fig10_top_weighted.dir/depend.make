# Empty dependencies file for bench_fig10_top_weighted.
# This may be replaced when dependencies are built.
