// A day in the life of a policy-preserving data center.
//
// Simulates the paper's §VI dynamic scenario end to end: a k=8 fat-tree,
// diurnal east/west-coast traffic (Eq. 9), and four operators side by
// side — do nothing, migrate VNFs with mPareto, or migrate VMs with
// PLAN / MCF — printing an hour-by-hour cost ledger.
//
// Run:  ./example_dynamic_datacenter [--l 200] [--n 5] [--mu 10000]
#include <iostream>

#include "sim/engine.hpp"
#include "topology/fat_tree.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workload/vm_placement.hpp"

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"l", "n", "mu", "seed"});
  const int l = static_cast<int>(opts.get_int("l", 200));
  const int n = static_cast<int>(opts.get_int("n", 5));
  const double mu = opts.get_double("mu", 1e4);

  const Topology topo = build_fat_tree(8);
  const AllPairs apsp(topo.graph);

  VmPlacementConfig workload;
  workload.num_pairs = l;
  workload.rack_zipf_s = 2.2;  // tenants concentrate (see DESIGN.md)
  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed", 1)));
  const std::vector<VmFlow> flows = generate_vm_flows(topo, workload, rng);

  NoMigrationPolicy none;
  ParetoMigrationPolicy pareto(mu);
  VmMigrationConfig vm_cfg;
  vm_cfg.mu = mu;
  vm_cfg.horizon_hours = 4.0;
  PlanPolicy plan(vm_cfg);
  McfPolicy mcf(vm_cfg);

  SimConfig cfg;  // 12 diurnal hours by default
  std::vector<std::pair<std::string, SimTrace>> traces;
  // Policies are cloneable prototypes (see sim/policy.hpp): each operator
  // runs on its own clone, leaving the prototypes untouched.
  for (const MigrationPolicy* proto :
       std::vector<const MigrationPolicy*>{&none, &pareto, &plan, &mcf}) {
    const auto policy = proto->clone();
    traces.emplace_back(proto->name(),
                        run_simulation(apsp, flows, n, cfg, *policy));
  }

  std::cout << "One simulated day on " << topo.name << " with l=" << l
            << " VM pairs, n=" << n << " VNFs, mu=" << mu << "\n\n";
  TablePrinter hourly({"hour", "NoMigration", "mPareto", "PLAN", "MCF"});
  for (int h = 0; h < cfg.hours; ++h) {
    std::vector<std::string> row{std::to_string(h)};
    for (const auto& [name, trace] : traces) {
      const auto& e = trace.epochs[static_cast<std::size_t>(h)];
      row.push_back(TablePrinter::num(e.comm_cost + e.migration_cost, 0));
    }
    hourly.add_row(std::move(row));
  }
  hourly.print(std::cout);

  std::cout << '\n';
  TablePrinter totals(
      {"operator", "total", "comm", "migration", "VNF moves", "VM moves"});
  for (const auto& [name, trace] : traces) {
    totals.add_row({name, TablePrinter::num(trace.total_cost, 0),
                    TablePrinter::num(trace.total_comm_cost, 0),
                    TablePrinter::num(trace.total_migration_cost, 0),
                    std::to_string(trace.total_vnf_migrations),
                    std::to_string(trace.total_vm_migrations)});
  }
  totals.print(std::cout);
  return 0;
}
