// Quickstart: the complete ppdc workflow in ~60 lines.
//
//  1. build a data-center topology (k=4 fat-tree),
//  2. generate a policy-preserving workload (VM pairs + traffic rates),
//  3. place an SFC traffic-optimally (TOP, Algorithm 3),
//  4. let the traffic change and migrate the VNFs (TOM, Algorithm 5),
//  5. compare against doing nothing.
//
// Run:  ./example_quickstart
#include <algorithm>
#include <iostream>

#include "core/explain.hpp"
#include "core/migration_pareto.hpp"
#include "core/placement_dp.hpp"
#include "graph/apsp.hpp"
#include "topology/fat_tree.hpp"
#include "workload/vm_placement.hpp"

int main() {
  using namespace ppdc;

  // 1. A k=4 fat-tree: 16 hosts, 20 switches, every switch can host a VNF.
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);  // precompute c(u, v) for the cost model
  std::cout << "topology: " << topo.name << " with " << topo.num_hosts()
            << " hosts and " << topo.num_switches() << " switches\n";

  // 2. Twenty communicating VM pairs, 80% rack-local, Facebook-like rates,
  //    with tenants concentrated in popular racks (Zipf skew).
  VmPlacementConfig workload;
  workload.num_pairs = 20;
  workload.rack_zipf_s = 2.0;
  Rng rng(/*seed=*/7);
  std::vector<VmFlow> flows = generate_vm_flows(topo, workload, rng);
  CostModel model(apsp, flows);

  // 3. Place an SFC of 3 VNFs (say firewall -> IDS -> cache proxy).
  const PlacementResult placed = solve_top_dp(model, /*n=*/3);
  std::cout << "\nSFC placed on:";
  for (const NodeId sw : placed.placement) {
    std::cout << " " << topo.graph.label(sw);
  }
  std::cout << "\ncommunication cost C_a = " << placed.comm_cost << "\n";
  print_breakdown(std::cout, model, placed.placement, "where the cost goes");

  // 4. Traffic changes: the west-coast tenants go quiet, the east-coast
  //    tenants surge (morning in the diurnal cycle).
  for (VmFlow& f : flows) {
    f.rate *= (f.group == 0) ? 4.0 : 0.05;
  }
  model.refresh();
  std::cout << "\nafter the traffic change the old placement costs "
            << model.communication_cost(placed.placement) << "\n";

  // 5. Migrate the VNFs (mu = ratio of VNF image size to packet size).
  const MigrationResult moved =
      solve_tom_pareto(model, placed.placement, /*mu=*/100.0);
  std::cout << "mPareto migrates " << moved.vnfs_moved
            << " VNF(s), paying C_b = " << moved.migration_cost
            << " to reach C_a = " << moved.comm_cost << "\n";
  std::cout << "total with migration  C_t = " << moved.total_cost << "\n";
  std::cout << "total without         C_a = "
            << model.communication_cost(placed.placement) << "\n";
  return 0;
}
