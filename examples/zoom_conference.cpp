// The paper's motivating workload (§I): Zoom-style cloud conferencing.
//
// Each VM flow is a conference bridge whose rate is the sum of its live
// meetings; meetings arrive and depart continuously, with heavy-tailed
// participant counts — "one Zoom Meeting Connector VM could support 200
// meetings with up to 1000 participants". The example runs 24 hours of
// session churn and shows mPareto chasing the bursty traffic, compared to
// leaving the SFC where the morning optimum put it.
//
// Run:  ./example_zoom_conference [--flows 24] [--n 4] [--mu 5000]
#include <iostream>

#include "sim/engine.hpp"
#include "topology/leaf_spine.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workload/vm_placement.hpp"
#include "workload/zoom.hpp"

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"flows", "n", "mu", "seed"});
  const int num_flows = static_cast<int>(opts.get_int("flows", 24));
  const int n = static_cast<int>(opts.get_int("n", 4));
  const double mu = opts.get_double("mu", 5000.0);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 11));

  // A leaf-spine fabric — the problems are topology-agnostic (§III).
  const Topology topo = build_leaf_spine(8, 4, 6);
  const AllPairs apsp(topo.graph);

  // Conference bridges live on fixed hosts; their rates churn hourly.
  VmPlacementConfig workload;
  workload.num_pairs = num_flows;
  workload.intra_rack_fraction = 0.5;  // bridges talk across racks too
  Rng rng(seed);
  std::vector<VmFlow> flows = generate_vm_flows(topo, workload, rng);

  // Pre-generate 24 hours of Zoom session churn as a rate schedule.
  ZoomWorkload zoom(num_flows, ZoomModel{}, seed);
  std::vector<std::vector<double>> schedule;
  for (int h = 0; h < 24; ++h) {
    schedule.push_back(zoom.rates());
    zoom.advance_hour();
  }

  SimConfig cfg;
  cfg.hours = 24;
  cfg.rate_schedule = [&](Hour hour) {
    return schedule[static_cast<std::size_t>(hour.value())];
  };

  NoMigrationPolicy none;
  ParetoMigrationPolicy pareto(mu);
  const SimTrace fixed = run_simulation(apsp, flows, n, cfg, none);
  const SimTrace adaptive = run_simulation(apsp, flows, n, cfg, pareto);

  std::cout << "Zoom-style conferencing on " << topo.name << ": "
            << num_flows << " bridges, SFC of " << n << " VNFs\n\n";
  TablePrinter t({"hour", "offered load", "fixed SFC", "mPareto",
                  "VNFs moved"});
  for (int h = 0; h < cfg.hours; ++h) {
    double load = 0.0;
    for (const double r : schedule[static_cast<std::size_t>(h)]) load += r;
    const auto& ef = fixed.epochs[static_cast<std::size_t>(h)];
    const auto& ea = adaptive.epochs[static_cast<std::size_t>(h)];
    t.add_row({std::to_string(h), TablePrinter::num(load, 0),
               TablePrinter::num(ef.comm_cost, 0),
               TablePrinter::num(ea.comm_cost + ea.migration_cost, 0),
               std::to_string(ea.vnf_migrations)});
  }
  t.print(std::cout);
  std::cout << "\n24h totals: fixed SFC " << TablePrinter::num(fixed.total_cost, 0)
            << " vs mPareto " << TablePrinter::num(adaptive.total_cost, 0)
            << "  (" << adaptive.total_vnf_migrations << " VNF moves, "
            << TablePrinter::num(
                   100.0 * (1.0 - adaptive.total_cost / fixed.total_cost), 1)
            << "% saved)\n";
  return 0;
}
