// Showcase of the §VII future-work extensions implemented in this
// library: per-switch co-location, per-flow SFC ranges, and VNF
// replication — all on one workload, with the plain paper model as the
// baseline.
//
// Run:  ./example_extensions_showcase
#include <iostream>

#include "core/colocation.hpp"
#include "core/explain.hpp"
#include "core/multi_sfc.hpp"
#include "core/placement_dp.hpp"
#include "core/replication.hpp"
#include "topology/fat_tree.hpp"
#include "util/table.hpp"
#include "workload/vm_placement.hpp"

int main() {
  using namespace ppdc;
  const Topology topo = build_fat_tree(4);
  const AllPairs apsp(topo.graph);
  VmPlacementConfig wl;
  wl.num_pairs = 16;
  wl.rack_zipf_s = 1.5;
  Rng rng(21);
  const std::vector<VmFlow> flows = generate_vm_flows(topo, wl, rng);
  CostModel model(apsp, flows);
  const int n = 4;

  std::cout << "Extensions of the paper's model on " << topo.name << " ("
            << flows.size() << " flows, n=" << n << ")\n\n";

  // Baseline: the paper's TOP (one VNF per switch, full chain for all).
  const PlacementResult plain = solve_top_dp(model, n);
  print_breakdown(std::cout, model, plain.placement,
                  "paper model (Algorithm 3)");

  TablePrinter t({"model", "C_a", "vs paper (%)"});
  const double base = plain.comm_cost;
  auto row = [&](const std::string& name, double cost) {
    t.add_row({name, TablePrinter::num(cost, 0),
               TablePrinter::num(100.0 * (1.0 - cost / base), 1)});
  };
  row("paper model (1 VNF/switch, full chains)", base);

  // (1) co-location: servers hold 2 VNFs each.
  row("co-location, capacity 2",
      solve_top_colocated(model, n, 2).comm_cost);
  row("co-location, capacity n (one server)",
      solve_top_colocated(model, n, n).comm_cost);

  // (2) heterogeneous SFCs: half the flows only need f2..f3.
  std::vector<RangedFlow> ranged;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    RangedFlow rf;
    rf.flow = flows[i];
    rf.first = (i % 2 == 0) ? 0 : 1;
    rf.last = (i % 2 == 0) ? n - 1 : 2;
    ranged.push_back(rf);
  }
  const MultiSfcCostModel msm(apsp, ranged, n);
  row("heterogeneous SFC ranges (range-aware DP)",
      solve_multi_sfc_relaxed(msm).comm_cost);

  // (3) replication: two replica chains, flows pick per-stage.
  const ReplicatedPlacement rep = solve_replicated_top(model, n, 2);
  row("2 replica chains (per-stage routing)",
      replicated_communication_cost(apsp, flows, rep));

  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\n(heterogeneous-SFC row charges each flow only its own "
               "range, so it is not directly comparable to the full-chain "
               "rows — it shows what range-awareness saves over placing "
               "for the full-chain assumption.)\n";
  return 0;
}
