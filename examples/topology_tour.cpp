// Tour of the topology zoo: runs the same placement problem on every
// fabric the library ships (fat-tree, leaf-spine, linear, ring, star,
// random) and prints how the traffic-optimal SFC adapts — the paper's
// claim that TOP/TOM "apply to any data center topology" (§III), made
// concrete.
//
// Run:  ./example_topology_tour
#include <iostream>

#include "baselines/steering.hpp"
#include "core/chain_search.hpp"
#include "core/placement_dp.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/linear.hpp"
#include "topology/misc.hpp"
#include "util/table.hpp"
#include "workload/vm_placement.hpp"

int main() {
  using namespace ppdc;
  std::vector<Topology> zoo;
  zoo.push_back(build_fat_tree(4));
  zoo.push_back(build_leaf_spine(6, 3, 4));
  zoo.push_back(build_linear(8));
  zoo.push_back(build_ring(10));
  zoo.push_back(build_star(8));
  zoo.push_back(build_random_connected(12, 16, 10, 0.5, 2.5, 99));

  std::cout << "The same TOP instance (l=12 flows, n=3 VNFs) on every "
               "fabric:\n\n";
  TablePrinter t({"topology", "hosts", "switches", "diameter", "DP cost",
                  "Optimal", "Steering", "chain"});
  for (const Topology& topo : zoo) {
    const AllPairs apsp(topo.graph);
    VmPlacementConfig cfg;
    cfg.num_pairs = 12;
    Rng rng(5);
    const auto flows = generate_vm_flows(topo, cfg, rng);
    CostModel model(apsp, flows);
    const PlacementResult dp = solve_top_dp(model, 3);
    const ChainSearchResult opt = solve_top_exhaustive(model, 3);
    const PlacementResult steering = solve_top_steering(model, 3);
    std::string chain;
    for (const NodeId w : dp.placement) {
      chain += (chain.empty() ? "" : "->") + topo.graph.label(w);
    }
    t.add_row({topo.name, std::to_string(topo.num_hosts()),
               std::to_string(topo.num_switches()),
               TablePrinter::num(apsp.diameter(), 0),
               TablePrinter::num(dp.comm_cost, 0),
               TablePrinter::num(opt.objective, 0),
               TablePrinter::num(steering.comm_cost, 0), chain});
  }
  t.print(std::cout);
  std::cout << "\nnote how the optimal chain hugs the traffic on every "
               "fabric while Steering's location-only heuristic pays for "
               "ignoring chain adjacency.\n";
  return 0;
}
