// ppdc_cli — scriptable driver over the library's file formats.
//
// Subcommands (--cmd=...):
//   generate  --topo fat-tree|leaf-spine|vl2|bcube|dcell --k 8 --l 200
//             --zipf 0 --seed 42 --topo-out t.txt --flows-out f.txt
//   place     --topo-in t.txt --flows-in f.txt --n 5
//             [--algo dp|steering|greedy|optimal] [--out p.txt]
//   migrate   --topo-in t.txt --flows-in f.txt --placement-in p.txt
//             --mu 1e4 [--out m.txt]
//   cost      --topo-in t.txt --flows-in f.txt --placement-in p.txt
//   dot       --topo-in t.txt [--flows-in f.txt] [--placement-in p.txt]
//
// Everything reads/writes the ppdc-* text formats (src/io/serialize.hpp);
// `dot` emits Graphviz on stdout.
#include <fstream>
#include <iostream>

#include "baselines/greedy_liu.hpp"
#include "baselines/steering.hpp"
#include "core/chain_search.hpp"
#include "core/explain.hpp"
#include "core/migration_pareto.hpp"
#include "core/placement_dp.hpp"
#include "graph/dot.hpp"
#include "io/serialize.hpp"
#include "topology/bcube.hpp"
#include "topology/dcell.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/vl2.hpp"
#include "util/options.hpp"
#include "workload/vm_placement.hpp"

namespace {

using namespace ppdc;

Topology make_topology(const std::string& kind, int k) {
  if (kind == "fat-tree") return build_fat_tree(k);
  if (kind == "leaf-spine") return build_leaf_spine(k, k / 2, k / 2);
  if (kind == "vl2") return build_vl2(k / 2, k / 2, k, k / 2);
  if (kind == "bcube") return build_bcube(k, 1);
  if (kind == "dcell") return build_dcell1(k);
  throw PpdcError("unknown topology kind: " + kind);
}

Topology read_topology(const std::string& path) {
  std::ifstream in(path);
  PPDC_REQUIRE(in.good(), "cannot open " + path);
  return load_topology(in);
}

std::vector<VmFlow> read_flows(const std::string& path) {
  std::ifstream in(path);
  PPDC_REQUIRE(in.good(), "cannot open " + path);
  return load_flows(in);
}

Placement read_placement(const std::string& path) {
  std::ifstream in(path);
  PPDC_REQUIRE(in.good(), "cannot open " + path);
  return load_placement(in);
}

int cmd_generate(const Options& opts) {
  Topology topo = make_topology(opts.get_string("topo", "fat-tree"),
                                static_cast<int>(opts.get_int("k", 8)));
  VmPlacementConfig cfg;
  cfg.num_pairs = static_cast<int>(opts.get_int("l", 100));
  cfg.rack_zipf_s = opts.get_double("zipf", 0.0);
  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed", 42)));
  const auto flows = generate_vm_flows(topo, cfg, rng);

  std::ofstream tout(opts.get_string("topo-out", "topology.txt"));
  save_topology(tout, topo);
  std::ofstream fout(opts.get_string("flows-out", "flows.txt"));
  save_flows(fout, flows);
  std::cout << "wrote " << topo.name << " (" << topo.num_hosts()
            << " hosts, " << topo.num_switches() << " switches) and "
            << flows.size() << " flows\n";
  return 0;
}

int cmd_place(const Options& opts) {
  const Topology topo = read_topology(opts.get_string("topo-in", "topology.txt"));
  const auto flows = read_flows(opts.get_string("flows-in", "flows.txt"));
  const AllPairs apsp(topo.graph);
  CostModel model(apsp, flows);
  const int n = static_cast<int>(opts.get_int("n", 5));
  const std::string algo = opts.get_string("algo", "dp");

  Placement p;
  if (algo == "dp") {
    p = solve_top_dp(model, n).placement;
  } else if (algo == "steering") {
    p = solve_top_steering(model, n).placement;
  } else if (algo == "greedy") {
    p = solve_top_greedy_liu(model, n).placement;
  } else if (algo == "optimal") {
    p = solve_top_exhaustive(model, n).placement;
  } else {
    throw PpdcError("unknown placement algorithm: " + algo);
  }
  print_breakdown(std::cout, model, p, algo + " placement");
  if (opts.has("out")) {
    std::ofstream out(opts.get_string("out", ""));
    save_placement(out, p);
  }
  return 0;
}

int cmd_migrate(const Options& opts) {
  const Topology topo = read_topology(opts.get_string("topo-in", "topology.txt"));
  const auto flows = read_flows(opts.get_string("flows-in", "flows.txt"));
  const Placement from =
      read_placement(opts.get_string("placement-in", "placement.txt"));
  const AllPairs apsp(topo.graph);
  CostModel model(apsp, flows);
  const MigrationResult r =
      solve_tom_pareto(model, from, opts.get_double("mu", 1e4));
  std::cout << "mPareto: moved " << r.vnfs_moved << " VNF(s), C_b = "
            << r.migration_cost << ", C_a = " << r.comm_cost
            << ", C_t = " << r.total_cost << "\n";
  if (opts.has("out")) {
    std::ofstream out(opts.get_string("out", ""));
    save_placement(out, r.migration);
  }
  return 0;
}

int cmd_cost(const Options& opts) {
  const Topology topo = read_topology(opts.get_string("topo-in", "topology.txt"));
  const auto flows = read_flows(opts.get_string("flows-in", "flows.txt"));
  const Placement p =
      read_placement(opts.get_string("placement-in", "placement.txt"));
  const AllPairs apsp(topo.graph);
  CostModel model(apsp, flows);
  print_breakdown(std::cout, model, p, "placement");
  return 0;
}

int cmd_dot(const Options& opts) {
  const Topology topo = read_topology(opts.get_string("topo-in", "topology.txt"));
  DotOptions dot;
  if (opts.has("flows-in")) {
    dot.flows = read_flows(opts.get_string("flows-in", ""));
  }
  if (opts.has("placement-in")) {
    dot.placement = read_placement(opts.get_string("placement-in", ""));
  }
  to_dot(std::cout, topo, dot);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ppdc::Options opts = ppdc::Options::parse(argc, argv);
    const std::string cmd = opts.get_string("cmd", "");
    if (cmd == "generate") return cmd_generate(opts);
    if (cmd == "place") return cmd_place(opts);
    if (cmd == "migrate") return cmd_migrate(opts);
    if (cmd == "cost") return cmd_cost(opts);
    if (cmd == "dot") return cmd_dot(opts);
    std::cerr << "usage: ppdc_cli --cmd=generate|place|migrate|cost|dot ...\n"
                 "see the header of examples/ppdc_cli.cpp for options\n";
    return cmd.empty() ? 2 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
