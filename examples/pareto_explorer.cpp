// Interactive-ish exploration of the migration trade-off (Theorem 5).
//
// Builds one traffic change on a fat-tree, then sweeps the migration
// coefficient μ across six orders of magnitude and shows where the chosen
// frontier point lands on the (C_b, C_a) Pareto front: free migration
// jumps all the way to the fresh optimum, expensive migration stays put,
// and in between the scalarized optimum slides along the convex front.
//
// Run:  ./example_pareto_explorer [--k 8] [--l 100] [--n 5]
#include <algorithm>
#include <iostream>

#include "core/migration_pareto.hpp"
#include "core/pareto_front.hpp"
#include "core/placement_dp.hpp"
#include "topology/fat_tree.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workload/diurnal.hpp"
#include "workload/vm_placement.hpp"

int main(int argc, char** argv) {
  using namespace ppdc;
  const Options opts = Options::parse(argc, argv);
  opts.restrict_to({"k", "l", "n", "seed"});
  const int k = static_cast<int>(opts.get_int("k", 8));
  const int l = static_cast<int>(opts.get_int("l", 100));
  const int n = static_cast<int>(opts.get_int("n", 5));

  const Topology topo = build_fat_tree(k);
  const AllPairs apsp(topo.graph);
  VmPlacementConfig workload;
  workload.num_pairs = l;
  workload.rack_zipf_s = 2.2;
  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed", 3)));
  std::vector<VmFlow> flows = generate_vm_flows(topo, workload, rng);
  CostModel model(apsp, flows);

  // Morning optimum, then the afternoon coast flip.
  const DiurnalModel diurnal;
  const std::vector<double> base = rates_of(flows);
  std::vector<int> groups;
  for (const auto& f : flows) groups.push_back(f.group);
  set_rates(flows, diurnal_rates_grouped(diurnal, base, groups, Hour{5}));
  model.refresh();
  const Placement morning = solve_top_dp(model, n).placement;
  set_rates(flows, diurnal_rates_grouped(diurnal, base, groups, Hour{10}));
  model.refresh();

  std::cout << "Migration trade-off after the afternoon traffic flip "
            << "(k=" << k << ", l=" << l << ", n=" << n << ")\n\n";
  TablePrinter t({"mu", "C_b", "C_a", "C_t", "VNFs moved"});
  for (const double mu : {0.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6}) {
    const MigrationResult r = solve_tom_pareto(model, morning, mu);
    t.add_row({TablePrinter::num(mu, 0), TablePrinter::num(r.migration_cost, 0),
               TablePrinter::num(r.comm_cost, 0),
               TablePrinter::num(r.total_cost, 0),
               std::to_string(r.vnfs_moved)});
  }
  t.print(std::cout);

  // Show the frontier cloud once, at a mid-range mu.
  const MigrationResult mid = solve_tom_pareto(model, morning, 1e3);
  const auto front = pareto_front(mid.frontier_points);
  std::cout << "\nParetor front of the parallel frontiers ("
            << (is_convex_front(front) ? "convex" : "non-convex")
            << ", Theorem 5):\n";
  TablePrinter ft({"C_b", "C_a"});
  for (const auto& p : front) {
    ft.add_row({TablePrinter::num(p.migration_cost, 0),
                TablePrinter::num(p.comm_cost, 0)});
  }
  ft.print(std::cout);
  std::cout << "\nas mu grows the pick slides from the fresh optimum (right "
               "end) back to the current placement (left end).\n";
  return 0;
}
